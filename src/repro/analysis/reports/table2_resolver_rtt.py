"""Table 2 (and appendix Tables 4–5) — ground RTT per domain × resolver.

The paper joins TCP flows to the resolver the customer used and shows
that for African customers the resolver choice changes which CDN node
serves a domain — e.g. ``captive.apple.com`` costs 19.1 ms for U.K.
customers on Operator-EU but 110.4 ms for Nigerians on 114DNS — while
for European customers the resolver barely matters, and anycast-served
domains (``nflxvideo.net``) are immune.

We reproduce the join: each customer's dominant resolver is derived
from its DNS flows, then TCP flows are grouped by
(country, resolver, domain pattern) and the mean ground RTT reported.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.aggregate import dominant_resolver_per_customer, format_table
from repro.analysis.dataset import FlowFrame
from repro.traffic.profiles import TOP_COUNTRIES

#: Domain groups of Table 2 (appendix tables add more second-level
#: domains; the benchmark may pass its own list).
DOMAIN_GROUPS: Dict[str, str] = {
    "captive.apple.com": r"^captive\.apple\.com$",
    "play.googleapis.com": r"^play\.googleapis\.com$",
    "*.nflxvideo.net": r"nflxvideo\.net$",
    "whatsapp.net": r"whatsapp\.net$",
    "googlevideo.com": r"googlevideo\.com$",
    "qq.com": r"qq\.com$",
    "scooper.news": r"scooper\.news$",
    "tiktokcdn.com": r"tiktokcdn\.com$",
}

#: Published examples (ms): (country, resolver, domain) → mean ground RTT.
PAPER_EXAMPLES: Dict[Tuple[str, str, str], float] = {
    ("UK", "Operator-EU", "captive.apple.com"): 19.1,
    ("UK", "Google", "captive.apple.com"): 26.0,
    ("Nigeria", "Operator-EU", "captive.apple.com"): 23.1,
    ("Nigeria", "Google", "captive.apple.com"): 38.4,
    ("Nigeria", "114DNS", "captive.apple.com"): 110.4,
    ("UK", "Operator-EU", "play.googleapis.com"): 16.3,
    ("Nigeria", "Google", "play.googleapis.com"): 36.0,
    ("Nigeria", "114DNS", "play.googleapis.com"): 114.2,
    ("Nigeria", "114DNS", "*.nflxvideo.net"): 20.1,
}


@dataclass
class Table2Result:
    """(country, resolver, domain group) → mean ground RTT (ms)."""

    mean_rtt_ms: Dict[Tuple[str, str, str], float]
    sample_counts: Dict[Tuple[str, str, str], int]

    def rtt(self, country: str, resolver: str, domain: str) -> Optional[float]:
        return self.mean_rtt_ms.get((country, resolver, domain))


def compute(
    frame: FlowFrame,
    countries: Sequence[str] = ("UK", "Nigeria"),
    domain_groups: Optional[Dict[str, str]] = None,
    min_samples: int = 5,
) -> Table2Result:
    """Mean ground RTT per (country, resolver, domain group)."""
    groups = domain_groups or DOMAIN_GROUPS
    compiled = {name: re.compile(pattern) for name, pattern in groups.items()}

    # Label each pooled domain with its group (tiny pool → cheap).
    pool_group = np.full(len(frame.domains), -1, dtype=np.int16)
    group_names = list(groups)
    for d_idx, domain in enumerate(frame.domains):
        for g_idx, name in enumerate(group_names):
            if compiled[name].search(domain):
                pool_group[d_idx] = g_idx
                break

    flow_group = np.full(len(frame), -1, dtype=np.int16)
    has_domain = frame.domain_idx >= 0
    flow_group[has_domain] = pool_group[frame.domain_idx[has_domain]]

    resolver_of = dominant_resolver_per_customer(frame)
    flow_resolver = np.array(
        [resolver_of.get(int(c), -1) for c in frame.customer_id], dtype=np.int16
    )

    has_rtt = np.isfinite(frame.ground_rtt_ms)
    means: Dict[Tuple[str, str, str], float] = {}
    counts: Dict[Tuple[str, str, str], int] = {}
    for country in countries:
        c_mask = frame.country_mask(country) & has_rtt & (flow_group >= 0)
        for r_idx, resolver in enumerate(frame.resolvers):
            r_mask = c_mask & (flow_resolver == r_idx)
            if not r_mask.any():
                continue
            for g_idx, group in enumerate(group_names):
                values = frame.ground_rtt_ms[r_mask & (flow_group == g_idx)]
                if len(values) >= min_samples:
                    key = (country, resolver, group)
                    means[key] = float(values.mean())
                    counts[key] = int(len(values))
    return Table2Result(mean_rtt_ms=means, sample_counts=counts)


def render(result: Table2Result) -> str:
    rows: List[Tuple[str, str, str, str, str]] = []
    seen_keys = sorted(result.mean_rtt_ms)
    for key in seen_keys:
        country, resolver, domain = key
        paper = PAPER_EXAMPLES.get(key)
        rows.append(
            (
                country,
                resolver,
                domain,
                f"{result.mean_rtt_ms[key]:.1f}",
                f"{paper:.1f}" if paper is not None else "-",
            )
        )
    return format_table(
        ["Country", "Resolver", "Domain", "Measured ms", "Paper ms"],
        rows,
        title="Table 2: mean ground RTT per domain and resolver",
    )
