"""Appendix Tables 4–5 — ground RTT per second-level domain × resolver.

The appendix expands Table 2 to the most popular *second-level domains*
for Congo/South Africa (Table 4) and Nigeria/U.K. (Table 5), one column
per resolver. We reproduce the same join as Table 2 but aggregate by
registrable domain (handling two-label TLDs, footnote 6) and select the
top domains by traffic volume per country.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.aggregate import dominant_resolver_per_customer, format_table
from repro.analysis.dataset import FlowFrame
from repro.analysis.domains import second_level_domain

#: A few of the appendix's published cells (ms) for orientation.
PAPER_EXAMPLES: Dict[Tuple[str, str, str], float] = {
    ("Nigeria", "Operator-EU", "whatsapp.net"): 51.3,
    ("Nigeria", "114", "whatsapp.net"): 63.7,
    ("Congo", "Operator-EU", "qq.com"): 243.3,
    ("South Africa", "Operator-EU", "googlevideo.com"): 48.4,
    ("UK", "Operator-EU", "whatsapp.net"): 26.2,
}


@dataclass
class AppendixResult:
    """(country, resolver, sld) → mean ground RTT ms, plus the top-SLD
    list per country (by volume)."""

    mean_rtt_ms: Dict[Tuple[str, str, str], float]
    top_domains: Dict[str, List[str]]

    def rtt(self, country: str, resolver: str, sld: str) -> Optional[float]:
        return self.mean_rtt_ms.get((country, resolver, sld))

    def resolver_spread(self, country: str, sld: str) -> Optional[float]:
        """Max−min mean RTT across resolvers for one domain."""
        values = [
            rtt for (c, _, d), rtt in self.mean_rtt_ms.items()
            if c == country and d == sld
        ]
        if len(values) < 2:
            return None
        return max(values) - min(values)


#: Second-level domains the paper's appendix always lists, kept in the
#: tables even when their volume is below the top-N cut (the Chinese
#: platforms and local African portals that motivate Section 6.4).
WATCHLIST_SLDS: Tuple[str, ...] = (
    "qq.com",
    "netease.com",
    "umeng.com",
    "yximgs.com",
    "scooper.news",
    "shalltry.com",
    "whatsapp.net",
    "googlevideo.com",
)


def compute(
    frame: FlowFrame,
    countries: Sequence[str] = ("Congo", "South Africa", "Nigeria", "UK"),
    top_n: int = 15,
    min_samples: int = 5,
    watchlist: Sequence[str] = WATCHLIST_SLDS,
) -> AppendixResult:
    """Mean ground RTT per (country, resolver, second-level domain)."""
    # second-level domain per pooled domain (tiny pool)
    pool_sld = [second_level_domain(d) for d in frame.domains]
    sld_names = sorted({s for s in pool_sld if s})
    sld_index = {name: i for i, name in enumerate(sld_names)}
    pool_sld_idx = np.array(
        [sld_index[s] if s else -1 for s in pool_sld], dtype=np.int32
    )
    flow_sld = np.full(len(frame), -1, dtype=np.int32)
    has_domain = frame.domain_idx >= 0
    flow_sld[has_domain] = pool_sld_idx[frame.domain_idx[has_domain]]

    resolver_of = dominant_resolver_per_customer(frame)
    flow_resolver = np.array(
        [resolver_of.get(int(c), -1) for c in frame.customer_id], dtype=np.int16
    )
    has_rtt = np.isfinite(frame.ground_rtt_ms)
    volume = frame.bytes_total()

    means: Dict[Tuple[str, str, str], float] = {}
    top_domains: Dict[str, List[str]] = {}
    for country in countries:
        c_mask = frame.country_mask(country) & (flow_sld >= 0)
        # top second-level domains by volume in this country
        totals: Dict[int, float] = {}
        for idx in np.unique(flow_sld[c_mask]):
            totals[int(idx)] = float(volume[c_mask & (flow_sld == idx)].sum())
        top = sorted(totals, key=totals.get, reverse=True)[:top_n]
        for name in watchlist:
            idx = sld_index.get(name)
            if idx is not None and idx in totals and idx not in top:
                top.append(idx)
        top_domains[country] = [sld_names[i] for i in top]

        measurable = c_mask & has_rtt
        for r_idx, resolver in enumerate(frame.resolvers):
            r_mask = measurable & (flow_resolver == r_idx)
            if not r_mask.any():
                continue
            for idx in top:
                values = frame.ground_rtt_ms[r_mask & (flow_sld == idx)]
                if len(values) >= min_samples:
                    means[(country, resolver, sld_names[idx])] = float(values.mean())
    return AppendixResult(mean_rtt_ms=means, top_domains=top_domains)


def render(result: AppendixResult, country: str) -> str:
    """One appendix-style table: rows = top SLDs, columns = resolvers."""
    resolvers = sorted(
        {r for (c, r, _) in result.mean_rtt_ms if c == country}
    )
    rows = []
    for sld in result.top_domains.get(country, []):
        row = [sld]
        for resolver in resolvers:
            value = result.rtt(country, resolver, sld)
            row.append(f"{value:.0f}" if value is not None else "-")
        rows.append(row)
    return format_table(
        ["Second-level domain"] + resolvers,
        rows,
        title=f"Appendix: mean ground RTT (ms) per domain and resolver — {country}",
    )


def _render_all(result: AppendixResult) -> str:
    """One appendix table per analyzed country."""
    return "\n\n".join(
        render(result, country) for country in result.top_domains
    )


from repro.analysis import registry as _registry

_registry.register(
    name="appendix",
    title="Ground RTT per second-level domain (appendix)",
    module=__name__,
    columns=(
        "country_idx",
        "customer_id",
        "domain_idx",
        "resolver_idx",
        "ground_rtt_ms",
        "bytes_up",
        "bytes_down",
    ),
    compute_frame=compute,
    render=_render_all,
)
