"""Figure 7 — daily volume per customer by service category (boxplots).

Paper: Chat volume is three-orders-of-magnitude-flavoured larger in
Africa (Congo median ≈250 MB/day vs <10 MB in Europe, top-5 % above
2 GB — community APs); Social is ≈300 MB in Congo vs ≈30 MB in Europe;
Video differences are smaller; Audio is small everywhere and slightly
larger in Europe.

Categories come from the Table 3 classifier over domains, as in the
paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.aggregate import format_table
from repro.analysis.classify import ServiceClassifier
from repro.analysis.dataset import FlowFrame
from repro.analysis.stats import BoxplotStats, boxplot_stats
from repro.traffic.profiles import TOP_COUNTRIES
from repro.traffic.services import ServiceCategory

CATEGORIES = (
    ServiceCategory.AUDIO,
    ServiceCategory.CHAT,
    ServiceCategory.SEARCH,
    ServiceCategory.SOCIAL,
    ServiceCategory.VIDEO,
    ServiceCategory.WORK,
)

#: Published medians (MB/day) where the paper states them.
PAPER_MEDIANS_MB: Dict[ServiceCategory, Dict[str, float]] = {
    ServiceCategory.CHAT: {"Congo": 250.0, "Spain": 10.0, "UK": 10.0, "Ireland": 10.0},
    ServiceCategory.SOCIAL: {"Congo": 300.0, "Spain": 30.0, "UK": 30.0, "Ireland": 30.0},
}


@dataclass
class Fig7Result:
    """category → country → boxplot of daily MB per customer using it."""

    boxes: Dict[ServiceCategory, Dict[str, BoxplotStats]]

    def median_mb(self, category: ServiceCategory, country: str) -> float:
        return self.boxes[category][country].median

    def p95_mb(self, category: ServiceCategory, country: str) -> float:
        return self.boxes[category][country].p95


def compute(
    frame: FlowFrame,
    countries: Sequence[str] = TOP_COUNTRIES,
    classifier: ServiceClassifier = None,
) -> Fig7Result:
    """Daily per-customer volume distributions per category/country."""
    classifier = classifier or ServiceClassifier()
    labels, names = classifier.label_frame(frame)
    category_by_label = {
        i: rule.category for i, rule in enumerate(classifier.rules)
    }
    volume = frame.bytes_total()
    boxes: Dict[ServiceCategory, Dict[str, BoxplotStats]] = {c: {} for c in CATEGORIES}
    for category in CATEGORIES:
        label_mask = np.array(
            [category_by_label.get(int(l)) == category if l >= 0 else False for l in labels]
        )
        for country in countries:
            mask = label_mask & frame.country_mask(country)
            totals = frame.customer_day_totals(volume, mask)
            samples = np.array(list(totals.values()), dtype=np.float64) / 1e6
            boxes[category][country] = boxplot_stats(samples)
    return Fig7Result(boxes=boxes)


def from_rollup(
    rollup, countries: Sequence[str] = TOP_COUNTRIES
) -> Fig7Result:
    """Figure 7 from a :class:`~repro.stream.StreamRollup`.

    Customer-day category volumes are sketched as sub-decade log
    histograms, so the box/whisker quantiles interpolate inside a bin
    (counts and the boxplot shape are preserved; exact sample
    quantiles are not).
    """
    hist = rollup.h7_volume
    boxes: Dict[ServiceCategory, Dict[str, BoxplotStats]] = {c: {} for c in CATEGORIES}
    for category in CATEGORIES:
        for country in countries:
            row = rollup.fig7_row(category, country)
            n = int(round(hist.total(row)))
            if n == 0:
                boxes[category][country] = BoxplotStats(*([float("nan")] * 5), n=0)
                continue
            p5, q1, median, q3, p95 = (
                hist.quantile(row, q) / 1e6 for q in (0.05, 0.25, 0.5, 0.75, 0.95)
            )
            boxes[category][country] = BoxplotStats(p5, q1, median, q3, p95, n)
    return Fig7Result(boxes=boxes)


def render(result: Fig7Result) -> str:
    countries = list(next(iter(result.boxes.values())).keys())
    rows = []
    for category in CATEGORIES:
        row = [category.value]
        for country in countries:
            stats = result.boxes[category][country]
            row.append(f"{stats.median:.0f}" if stats.n else "-")
        rows.append(row)
    return format_table(
        ["Category"] + [f"{c} med MB" for c in countries],
        rows,
        title="Figure 7: median daily volume per customer using the category",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig7",
    title="Daily volume per customer by category",
    module=__name__,
    columns=("country_idx", "customer_id", "day", "domain_idx", "bytes_up", "bytes_down"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
)
