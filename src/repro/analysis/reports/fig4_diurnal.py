"""Figure 4 — daily traffic trends per country (UTC, normalized).

Paper: European traffic peaks 18:00–20:00 UTC, drops to ~50 % in the
morning and ~20 % at night. African countries are busy all morning —
Congo's absolute peak is 9:00 UTC (10:00 local) — and the nightly low
stays near 40 % of peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.aggregate import format_table, hourly_volume_utc
from repro.analysis.dataset import FlowFrame
from repro.traffic.profiles import TOP_COUNTRIES


@dataclass
class Fig4Result:
    """country → 24 hourly volumes normalized to that country's max."""

    curves: Dict[str, np.ndarray]

    def peak_hour_utc(self, country: str) -> int:
        return int(np.argmax(self.curves[country]))

    def night_floor(self, country: str) -> float:
        """Minimum of the normalized curve over 0:00–5:00 UTC-ish hours."""
        return float(self.curves[country].min())

    def morning_level(self, country: str, hour_utc: int = 9) -> float:
        """Normalized volume at ``hour_utc`` (Congo peaks here)."""
        return float(self.curves[country][hour_utc])


def compute(frame: FlowFrame, countries: Sequence[str] = TOP_COUNTRIES) -> Fig4Result:
    """Normalized hourly curves for the requested countries."""
    return Fig4Result(
        curves={country: hourly_volume_utc(frame, country) for country in countries}
    )


def from_rollup(rollup, countries: Sequence[str] = TOP_COUNTRIES) -> Fig4Result:
    """Figure 4 from a :class:`~repro.stream.StreamRollup`.

    Uses the per-(day, hour) volume matrices: the median across days
    damps single binge days like the frame path's robust curve, minus
    the per-flow winsorization (which needs raw flow sizes).
    """
    return Fig4Result(
        curves={
            country: rollup.hourly_day_median(country) for country in countries
        }
    )


def render(result: Fig4Result) -> str:
    from repro.analysis.plotting import sparkline

    rows = []
    for country, curve in result.curves.items():
        rows.append(
            (
                country,
                result.peak_hour_utc(country),
                f"{result.morning_level(country):.2f}",
                f"{result.night_floor(country):.2f}",
                sparkline(curve),
            )
        )
    return format_table(
        ["Country", "Peak hour (UTC)", "9:00 level", "Night floor", "0h ──────────── 23h"],
        rows,
        title="Figure 4: diurnal pattern (volumes normalized per country)",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig4",
    title="Diurnal traffic pattern",
    module=__name__,
    columns=("country_idx", "hour_utc", "day", "bytes_up", "bytes_down"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
)
