"""Figure 8b (extended) — satellite RTT vs local time of day.

The delay-engine companion to Figure 8a: instead of two local-hour
periods, the full 24-hour axis of per-country median satellite RTT.
Under the static GEO model the series is flat up to load effects; with
a :class:`~repro.satcom.delaysource.ConstellationDelaySource` the
orbital floor and handover spikes make per-hour medians move, which is
exactly what this report exists to show (and what the constellation CI
smoke job asserts).

Serves from both sources: the frame path takes medians directly, the
rollup path reads the ``h8_hour`` bank (one 25 ms-binned histogram per
(country, local hour) — schema v3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.aggregate import format_table, local_hour_of
from repro.analysis.dataset import FlowFrame
from repro.traffic.profiles import TOP_COUNTRIES

HOURS = tuple(range(24))


@dataclass
class Fig8bTimeseriesResult:
    """country → 24-vector of per-local-hour median sat RTT (ms).

    Hours with no satellite samples hold ``nan``.
    """

    medians_ms: Dict[str, np.ndarray]
    counts: Dict[str, np.ndarray]

    def spread_ms(self, country: str) -> float:
        """Max − min of the country's hourly medians (the time-variation
        signal: near zero for GEO, tens of ms for a constellation)."""
        values = self.medians_ms[country]
        values = values[np.isfinite(values)]
        if len(values) == 0:
            return float("nan")
        return float(values.max() - values.min())


def compute(
    frame: FlowFrame, countries: Sequence[str] = TOP_COUNTRIES
) -> Fig8bTimeseriesResult:
    """Per-local-hour median satellite RTT per country, from a frame."""
    local_hour = local_hour_of(frame)
    hour = local_hour.astype(np.int64) % 24
    has_sat = np.isfinite(frame.sat_rtt_ms)
    medians: Dict[str, np.ndarray] = {}
    counts: Dict[str, np.ndarray] = {}
    for country in countries:
        mask = frame.country_mask(country) & has_sat
        med = np.full(24, np.nan)
        cnt = np.zeros(24, dtype=np.int64)
        for h in HOURS:
            sat = frame.sat_rtt_ms[mask & (hour == h)]
            cnt[h] = len(sat)
            if len(sat):
                med[h] = float(np.median(sat.astype(np.float64)))
        medians[country] = med
        counts[country] = cnt
    return Fig8bTimeseriesResult(medians_ms=medians, counts=counts)


def from_rollup(
    rollup, countries: Sequence[str] = TOP_COUNTRIES
) -> Fig8bTimeseriesResult:
    """The same series from the ``h8_hour`` sketch of a stream rollup.

    Medians interpolate inside a 25 ms bin, so frame and rollup paths
    agree to bin resolution (the report-parity suite checks fig8a the
    same way).
    """
    medians: Dict[str, np.ndarray] = {}
    counts: Dict[str, np.ndarray] = {}
    for country in countries:
        base = rollup.country_row(country) * 24
        med = np.full(24, np.nan)
        cnt = np.zeros(24, dtype=np.int64)
        for h in HOURS:
            row = base + h
            total = rollup.h8_hour.total(row)
            cnt[h] = int(total)
            if total > 0:
                med[h] = rollup.h8_hour.quantile(row, 0.5)
        medians[country] = med
        counts[country] = cnt
    return Fig8bTimeseriesResult(medians_ms=medians, counts=counts)


def render(result: Fig8bTimeseriesResult) -> str:
    countries = list(result.medians_ms)
    rows = []
    for h in HOURS:
        rows.append(
            (f"{h:02d}:00",)
            + tuple(
                f"{result.medians_ms[c][h]:.0f}"
                if np.isfinite(result.medians_ms[c][h])
                else "-"
                for c in countries
            )
        )
    rows.append(
        ("spread",)
        + tuple(f"{result.spread_ms(c):.0f}" for c in countries)
    )
    return format_table(
        ["Local hour"] + [f"{c} ms" for c in countries],
        rows,
        title="Figure 8b: median satellite RTT vs local time of day",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig8b",
    title="Satellite RTT vs time of day",
    module=__name__,
    columns=("country_idx", "hour_utc", "sat_rtt_ms"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
)
