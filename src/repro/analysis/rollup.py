"""Hourly aggregation views (the paper's Section 3.1, second step).

"The second step is to create aggregated views of the data to obtain
traffic breakdowns by protocols, server domains, time (with 1 hour
granularity), country of the customer, and contacted service. This
aggregation step facilitates subsequent data processing by reducing the
amount of data to be processed by several orders of magnitude, enabling
real-time data exploration."

:class:`HourlyRollup` is that view: one row per
(day, hour, country, protocol, service) with flow/byte counters, built
in one vectorized pass and queryable without touching the flow table
again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.dataset import FlowFrame


@dataclass
class HourlyRollup:
    """Columnar aggregate keyed by (day, hour, country, l7, service)."""

    day: np.ndarray
    hour: np.ndarray
    country_idx: np.ndarray
    l7_idx: np.ndarray
    service_idx: np.ndarray  # -1 = unattributed
    flows: np.ndarray
    bytes_total: np.ndarray
    bytes_up: np.ndarray
    bytes_down: np.ndarray
    customers: np.ndarray  # distinct customers in the cell

    countries: list
    services: list

    def __len__(self) -> int:
        return len(self.day)

    @classmethod
    def from_frame(cls, frame: FlowFrame) -> "HourlyRollup":
        """Aggregate a flow table into hourly cells."""
        if frame.customer_id.max(initial=0) >= 1_000_000:
            raise ValueError("rollup keys assume customer ids below 1e6")
        hours = frame.hour_utc.astype(np.int64) % 24
        # Composite key: day | hour | country | l7 | service(+1)
        key = (
            frame.day.astype(np.int64) * 10_000_000
            + hours * 100_000
            + frame.country_idx.astype(np.int64) * 1_000
            + frame.l7_idx.astype(np.int64) * 100
            + (frame.service_true_idx.astype(np.int64) + 1)
        )
        # Sort by (cell, customer) so distinct-customer counting is a
        # simple adjacent-difference within each cell.
        combined = key * 1_000_000 + frame.customer_id.astype(np.int64)
        order = np.argsort(combined, kind="stable")
        sorted_combined = combined[order]
        sorted_key = sorted_combined // 1_000_000
        boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_key)) + 1))

        def segsum(values: np.ndarray) -> np.ndarray:
            return np.add.reduceat(values[order].astype(np.float64), boundaries)

        unique = sorted_key[boundaries]
        service = (unique % 100) - 1
        rest = unique // 100
        l7 = rest % 10
        rest //= 10
        country = rest % 100
        rest //= 100
        hour = rest % 100
        day = rest // 100

        distinct_mask = np.ones(len(sorted_combined), dtype=bool)
        distinct_mask[1:] = np.diff(sorted_combined) != 0
        customers = np.add.reduceat(distinct_mask.astype(np.float64), boundaries)

        return cls(
            day=day.astype(np.int32),
            hour=hour.astype(np.int8),
            country_idx=country.astype(np.int16),
            l7_idx=l7.astype(np.int8),
            service_idx=service.astype(np.int16),
            flows=segsum(np.ones(len(frame))),
            bytes_total=segsum(frame.bytes_total()),
            bytes_up=segsum(frame.bytes_up),
            bytes_down=segsum(frame.bytes_down),
            customers=customers,
            countries=frame.countries,
            services=frame.services,
        )

    # -- queries -----------------------------------------------------------

    def _mask(
        self,
        country: Optional[str] = None,
        l7_idx: Optional[int] = None,
        service: Optional[str] = None,
        hour: Optional[int] = None,
        day: Optional[int] = None,
    ) -> np.ndarray:
        mask = np.ones(len(self), dtype=bool)
        if country is not None:
            mask &= self.country_idx == self.countries.index(country)
        if l7_idx is not None:
            mask &= self.l7_idx == l7_idx
        if service is not None:
            mask &= self.service_idx == self.services.index(service)
        if hour is not None:
            mask &= self.hour == hour
        if day is not None:
            mask &= self.day == day
        return mask

    def volume(self, **filters) -> float:
        """Total bytes matching the filters."""
        return float(self.bytes_total[self._mask(**filters)].sum())

    def flow_count(self, **filters) -> float:
        """Total flows matching the filters."""
        return float(self.flows[self._mask(**filters)].sum())

    def hourly_series(self, country: str) -> np.ndarray:
        """24-vector of volume per UTC hour (sums across days)."""
        out = np.zeros(24)
        mask = self._mask(country=country)
        np.add.at(out, self.hour[mask].astype(int), self.bytes_total[mask])
        return out

    def reduction_factor(self, frame: FlowFrame) -> float:
        """How many times smaller the rollup is than the flow table."""
        if len(self) == 0:
            return float("inf")
        return len(frame) / len(self)
