"""The ``FlowSource`` protocol — one handle over every capture shape.

The paper computes every table and figure from one aggregation layer
(Section 3.1); the reproduction grew three capture shapes — an
in-memory :class:`~repro.analysis.dataset.FlowFrame`, a spilled
:class:`~repro.stream.store.FlowStore` directory, and mergeable
:class:`~repro.stream.rollup.StreamRollup` sketches. A
:class:`FlowSource` wraps any of them behind two questions a report
can ask:

* :meth:`FlowSource.to_frame` — give me flows (optionally only the
  *columns* I declared, so a spilled capture only decompresses what
  the report reads);
* :meth:`FlowSource.to_rollup` — give me the mergeable sketches.

:func:`load_capture` is the single entry point the CLI uses: it
auto-detects what a path holds (frame ``.npz``, capture directory,
bare rollup state) and raises :class:`CaptureError` with a diagnosis
— unknown path, bad manifest, truncated npz — instead of a traceback.
"""

from __future__ import annotations

import json
import time
import zipfile
from pathlib import Path
from typing import ClassVar, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.dataset import _ARRAY_FIELDS, _POOL_FIELDS, FlowFrame


class CaptureError(ValueError):
    """A capture artifact could not be understood (message says why).

    Raised by :func:`load_capture` and by every artifact reader in the
    pipeline (store windows, manifests, checkpoints, rollup state) when
    a file is truncated, bit-flipped, or from another schema. Subclasses
    :class:`ValueError` so pre-existing ``except ValueError`` call sites
    keep working; the point is that *corruption is diagnosed, never a
    raw decoder traceback*.
    """


class FlowSource:
    """Abstract handle over one capture, whatever its on-disk shape."""

    #: "frame" | "store" | "rollup" — what the source natively holds.
    kind: ClassVar[str] = "?"

    def to_frame(self, columns: Optional[Sequence[str]] = None) -> FlowFrame:
        """Materialize flows (projected to ``columns`` when the backing
        store supports it). Raises :class:`CaptureError` when flows are
        not recoverable (a bare rollup)."""
        raise NotImplementedError

    def to_rollup(self):
        """The capture's :class:`~repro.stream.StreamRollup` sketches
        (folded on demand when not already materialized)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One human line for CLI diagnostics."""
        raise NotImplementedError


class FrameSource(FlowSource):
    """A :class:`FlowFrame` already in memory (or loaded from ``.npz``)."""

    kind = "frame"

    def __init__(self, frame: FlowFrame, path: Optional[Path] = None) -> None:
        self.frame = frame
        self.path = path

    def to_frame(self, columns: Optional[Sequence[str]] = None) -> FlowFrame:
        # The frame is already resident — projection would save nothing.
        return self.frame

    def to_rollup(self):
        from repro.stream.rollup import StreamRollup

        return StreamRollup.for_frame(self.frame).update(self.frame)

    def describe(self) -> str:
        origin = f" from {self.path}" if self.path else ""
        return f"frame{origin}: {len(self.frame):,} flows"


class StoreSource(FlowSource):
    """A spilled capture directory — lazy, column-projected reads."""

    kind = "store"

    def __init__(self, store) -> None:
        self.store = store
        self.directory = Path(store.directory)

    def to_frame(self, columns: Optional[Sequence[str]] = None) -> FlowFrame:
        """Concatenate the stored windows into one frame.

        With ``columns``, only those npz members are decompressed; the
        remaining columns are backfilled with their
        :attr:`FlowFrame.COLUMN_FILL` sentinels so the result is a
        well-typed frame that any report declaring those columns can
        consume.
        """
        pools = {name: list(self.store.pools[name]) for name in _POOL_FIELDS}
        if columns is not None:
            unknown = set(columns) - set(_ARRAY_FIELDS)
            if unknown:
                raise KeyError(f"unknown columns {sorted(unknown)}")
        frames: List[FlowFrame] = []
        for _, window in self.store.iter_windows(columns=columns):
            if columns is None:
                frames.append(window)
                continue
            n = len(next(iter(window.values()))) if window else 0
            full: Dict[str, np.ndarray] = {}
            for name in _ARRAY_FIELDS:
                dtype = FlowFrame.COLUMN_DTYPES[name]
                if name in window:
                    full[name] = window[name].astype(dtype, copy=False)
                else:
                    full[name] = np.full(n, FlowFrame.COLUMN_FILL[name], dtype=dtype)
            frames.append(FlowFrame(**pools, **full))
        if not frames:
            return FlowFrame.empty(**pools)
        if len(frames) == 1:
            return frames[0]
        return FlowFrame.concat(frames)

    def to_rollup(self):
        """The capture's rollup — the saved state when loadable at the
        current schema, else re-folded from the stored windows."""
        from repro.stream.checkpoint import rollup_path
        from repro.stream.rollup import StreamRollup

        saved = rollup_path(self.directory)
        if saved.exists():
            try:
                return StreamRollup.load(saved)
            except (ValueError, KeyError, OSError, zipfile.BadZipFile):
                pass  # schema drift / truncation: fall back to folding
        pools = self.store.pools
        rollup = StreamRollup(
            pools["countries"], pools["services"], pools["resolvers"]
        )
        for _, window in self.store.iter_windows():
            rollup.update(window)
        return rollup

    def describe(self) -> str:
        stored = self.store.stored_window_count()
        return (
            f"stream capture {self.directory}: {stored}/"
            f"{len(self.store.windows)} windows stored"
        )


class RollupSource(FlowSource):
    """Bare rollup sketches — aggregates only, no flows behind them."""

    kind = "rollup"

    def __init__(self, rollup, path: Optional[Path] = None) -> None:
        self.rollup = rollup
        self.path = path

    def to_frame(self, columns: Optional[Sequence[str]] = None) -> FlowFrame:
        raise CaptureError(
            "rollup sketches cannot reconstruct flows; this report needs "
            "a frame .npz or a stream capture directory"
        )

    def to_rollup(self):
        return self.rollup

    def describe(self) -> str:
        origin = f" from {self.path}" if self.path else ""
        return (
            f"rollup{origin}: {self.rollup.flows_total:,} flows in "
            f"{self.rollup.windows_folded} windows"
        )


def load_capture(path: Union[str, Path]) -> FlowSource:
    """Open ``path`` as whatever capture shape it holds.

    Accepts a frame ``.npz`` (written by :meth:`FlowFrame.save_npz`),
    a stream capture directory (``manifest.json`` + windows), or a
    bare rollup state ``.npz``. Raises :class:`CaptureError` with a
    usable diagnosis for everything else.
    """
    from repro.stream.rollup import StreamRollup

    path = Path(path)
    if not path.exists():
        raise CaptureError(
            f"no such capture: {path} (expected a frame .npz or a stream "
            "capture directory)"
        )
    if path.is_dir():
        return _open_capture_dir(path)

    try:
        with np.load(path, allow_pickle=True) as data:
            members = set(data.files)
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise CaptureError(
            f"cannot read {path}: {exc} (truncated download or not an npz?)"
        ) from exc
    if "pool_countries" in members:
        missing = [
            name
            for name in _ARRAY_FIELDS
            if name not in members
        ]
        if missing:
            raise CaptureError(
                f"{path} looks like a frame capture but lacks columns "
                f"{missing} — truncated write?"
            )
        try:
            return FrameSource(FlowFrame.load_npz(path), path=path)
        except (ValueError, zipfile.BadZipFile) as exc:
            raise CaptureError(f"cannot load frame {path}: {exc}") from exc
    if "meta" in members:
        try:
            return RollupSource(StreamRollup.load(path), path=path)
        except CaptureError:
            raise  # already diagnosed by the rollup loader
        except (ValueError, KeyError) as exc:
            raise CaptureError(f"cannot load rollup {path}: {exc}") from exc
    raise CaptureError(
        f"{path} is an npz but neither a frame capture (no pool_* members) "
        "nor a rollup state (no meta member)"
    )


def _open_capture_dir(path: Path) -> "StoreSource":
    """Open a capture directory, tolerating the live-capture race.

    A *running* capture writes ``manifest.json`` atomically
    (write-temp + rename), but a reader can still catch the gap before
    the very first rename lands — ``exists()`` said yes (or no) a
    moment ago, the open/parse says otherwise. Those transient shapes
    (``FileNotFoundError``, a JSON decode error) are retried once
    after a short sleep; if the directory still won't open but its
    ``checkpoint.json`` does, the diagnosis becomes "capture in
    progress (N% complete)" via :meth:`Checkpoint.progress` instead of
    a misleading corruption report.
    """
    from repro.stream.store import FlowStore

    last_exc: Optional[Exception] = None
    for attempt in range(2):
        try:
            if not (path / "manifest.json").exists():
                raise FileNotFoundError(f"no manifest.json in {path}")
            return StoreSource(FlowStore.open(path))
        except (FileNotFoundError, json.JSONDecodeError) as exc:
            # The transient race shapes: retry once, then diagnose.
            last_exc = exc
            if attempt == 0:
                time.sleep(0.05)
                continue
        except CaptureError as exc:
            # The store diagnoses a torn manifest itself; when the tear
            # is a JSON decode error it may be the same transient race,
            # so it earns the same single retry before we re-raise.
            if not isinstance(exc.__cause__, json.JSONDecodeError):
                raise
            last_exc = exc
            if attempt == 0:
                time.sleep(0.05)
                continue
        except ValueError as exc:
            raise CaptureError(f"cannot open capture {path}: {exc}") from exc

    # Still unreadable after the retry. A live checkpoint turns this
    # into a progress report rather than a corruption diagnosis.
    try:
        from repro.stream.checkpoint import load_checkpoint

        checkpoint = load_checkpoint(path)
    except CaptureError:
        checkpoint = None
    if checkpoint is not None:
        raise CaptureError(
            f"capture in progress ({checkpoint.progress():.0%} complete, "
            f"{checkpoint.windows_done}/{checkpoint.n_windows} windows): "
            f"{path} is mid-write ({last_exc}); retry shortly or query it "
            "live with `repro serve`"
        ) from last_exc
    if isinstance(last_exc, CaptureError):
        raise last_exc  # the store's own torn-manifest diagnosis
    if isinstance(last_exc, json.JSONDecodeError):
        raise CaptureError(
            f"bad capture manifest in {path}: {last_exc}"
        ) from last_exc
    raise CaptureError(
        f"{path} is a directory without a manifest.json — not a "
        "stream capture (did the capture run at all?)"
    ) from last_exc
