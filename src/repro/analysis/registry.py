"""Declarative report registry — the analysis layer's dispatch table.

Every table/figure module registers a :class:`ReportSpec` at import
time: its CLI name, the flow columns it reads, how to compute from a
:class:`~repro.analysis.dataset.FlowFrame` and/or from
:class:`~repro.stream.StreamRollup` sketches, and how to render the
result. The CLI (``repro report`` / ``repro stream-report``) and the
parity tests iterate this registry instead of hand-maintained
if-chains, so adding a report is one module plus one ``register()``
call — the dispatch, the ``--help`` text, the capability matrix in the
docs and the parity suite all pick it up.

Registration happens when :mod:`repro.analysis.reports` imports its
submodules; that import order *is* the registry (and CLI) order. Use
:func:`ensure_loaded` before reading the registry from code that may
run before the package import.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.dataset import _ARRAY_FIELDS
from repro.analysis.source import CaptureError, FlowSource

#: Source kinds a report can declare support for, in matrix order.
SOURCE_KINDS = ("frame", "store", "rollup")


class ReportSourceError(CaptureError):
    """A report was asked to run from a source kind it cannot serve."""


@dataclass(frozen=True)
class ReportSpec:
    """One table/figure: what it needs and how to run it.

    ``columns`` is the projection a spilled capture loads for the
    frame path — it must cover everything ``compute_frame`` touches
    (the store-projection parity test enforces this). ``exact_parity``
    asserts the rollup path renders *byte-identically* to the frame
    path; leave it False for reports whose rollup quantiles
    interpolate inside histogram bins.
    """

    name: str
    title: str
    module: str
    columns: Tuple[str, ...]
    render: Callable[[object], str]
    compute_frame: Optional[Callable] = None
    compute_rollup: Optional[Callable] = None
    exact_parity: bool = False

    @property
    def sources(self) -> Tuple[str, ...]:
        """Source kinds this report can run from (store rides the
        frame path via column projection)."""
        kinds: List[str] = []
        if self.compute_frame is not None:
            kinds += ["frame", "store"]
        if self.compute_rollup is not None:
            kinds.append("rollup")
        return tuple(kinds)

    def supports(self, kind: str) -> bool:
        return kind in self.sources


_REGISTRY: Dict[str, ReportSpec] = {}


def register(**kwargs) -> ReportSpec:
    """Add one report (called from its module, at import time)."""
    spec = ReportSpec(**kwargs)
    if spec.compute_frame is None and spec.compute_rollup is None:
        raise ValueError(f"report {spec.name!r} registers no compute entry point")
    unknown = set(spec.columns) - set(_ARRAY_FIELDS)
    if unknown:
        raise ValueError(
            f"report {spec.name!r} declares unknown columns {sorted(unknown)}"
        )
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.module != spec.module:
        raise ValueError(
            f"report name {spec.name!r} already registered by {existing.module}"
        )
    _REGISTRY[spec.name] = spec
    return spec


def ensure_loaded() -> None:
    """Import the reports package; its import order defines registry
    (and therefore CLI ``--which all``) order."""
    import repro.analysis.reports  # noqa: F401


def names() -> List[str]:
    ensure_loaded()
    return list(_REGISTRY)


def specs() -> List[ReportSpec]:
    ensure_loaded()
    return list(_REGISTRY.values())


def get(name: str) -> ReportSpec:
    ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown report {name!r}; choose from {', '.join(_REGISTRY)}"
        ) from None


def run(name: str, source: FlowSource, prefer: Optional[str] = None) -> str:
    """Render one report from whatever ``source`` holds.

    The frame path is the default; ``prefer="rollup"`` forces the
    sketch path (what ``stream-report`` does), and a bare rollup
    source can *only* serve sketch-capable reports. A frame-only
    report asked to run from sketches raises
    :class:`ReportSourceError` rather than silently decompressing the
    flows behind the caller's back.
    """
    spec = get(name)
    if source.kind == "rollup" or prefer == "rollup":
        if spec.compute_rollup is None:
            rollup_capable = [s.name for s in specs() if s.compute_rollup]
            raise ReportSourceError(
                f"report {name!r} needs flow records and cannot run from "
                f"rollup sketches; sketch-capable reports: "
                f"{', '.join(rollup_capable)}"
            )
        return spec.render(spec.compute_rollup(source.to_rollup()))
    if spec.compute_frame is None:
        # Rollup-only report on a flow-bearing source: fold and serve.
        return spec.render(spec.compute_rollup(source.to_rollup()))
    return spec.render(spec.compute_frame(source.to_frame(columns=spec.columns)))


def capability_matrix_markdown() -> str:
    """The report × source-kind capability table embedded in the docs
    (README/DESIGN carry this verbatim; a test keeps them in sync)."""
    header = "| Report | Title | " + " | ".join(SOURCE_KINDS) + " |"
    rule = "|---|---|" + "---|" * len(SOURCE_KINDS)
    lines = [header, rule]
    for spec in specs():
        marks = " | ".join(
            "✓" if spec.supports(kind) else "—" for kind in SOURCE_KINDS
        )
        lines.append(f"| `{spec.name}` | {spec.title} | {marks} |")
    return "\n".join(lines)
