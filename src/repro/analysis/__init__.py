"""Analytics over flow datasets (the paper's Spark pipeline, Section 3).

:mod:`repro.analysis.dataset` holds the columnar flow store;
:mod:`repro.analysis.classify` implements the Table 3 regex service
classifier; :mod:`repro.analysis.aggregate` the rollups; and
:mod:`repro.analysis.reports` one module per table/figure of the paper.
"""

from repro.analysis.dataset import FlowFrame
from repro.analysis.classify import ServiceClassifier
from repro.analysis.stats import ccdf, boxplot_stats, quantiles

__all__ = ["FlowFrame", "ServiceClassifier", "ccdf", "boxplot_stats", "quantiles"]
