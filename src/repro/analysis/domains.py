"""Domain-name utilities.

The paper aggregates server names by *second-level domain* for the
appendix tables (Tables 4–5) and notes (footnote 6) that it handles
two-label top-level domains such as ``co.uk``. This module implements
that extraction against a compact public-suffix list covering the
domains appearing in the reproduction.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

#: Domain groups of Table 2 (appendix tables add more second-level
#: domains). Lives here — below both the report layer and the stream
#: rollup — so the streamed Table 2 sketch and the frame path share one
#: definition.
TABLE2_DOMAIN_GROUPS: Dict[str, str] = {
    "captive.apple.com": r"^captive\.apple\.com$",
    "play.googleapis.com": r"^play\.googleapis\.com$",
    "*.nflxvideo.net": r"nflxvideo\.net$",
    "whatsapp.net": r"whatsapp\.net$",
    "googlevideo.com": r"googlevideo\.com$",
    "qq.com": r"qq\.com$",
    "scooper.news": r"scooper\.news$",
    "tiktokcdn.com": r"tiktokcdn\.com$",
}

#: Two-label public suffixes relevant to the generated domain space
#: (compact subset of the public-suffix list — extend as needed).
TWO_LABEL_SUFFIXES: Set[str] = {
    "co.uk",
    "org.uk",
    "ac.uk",
    "gov.uk",
    "co.za",
    "org.za",
    "com.ng",
    "gov.ng",
    "co.ke",
    "com.br",
    "com.cn",
    "net.cn",
    "org.cn",
    "co.jp",
    "com.au",
    "appspot.com",       # treated as a suffix: apps are the registrable unit
    "s3.amazonaws.com",
    "cloudfront.net",
}


def second_level_domain(domain: Optional[str]) -> Optional[str]:
    """The registrable domain (one label below the public suffix).

    >>> second_level_domain("rr4---sn-x.googlevideo.com")
    'googlevideo.com'
    >>> second_level_domain("news.bbc.co.uk")
    'bbc.co.uk'
    >>> second_level_domain("twitter-any.s3.amazonaws.com")
    'twitter-any.s3.amazonaws.com'
    """
    if not domain:
        return None
    domain = domain.strip(".").lower()
    labels = domain.split(".")
    if len(labels) < 2:
        return domain
    # three-label suffixes first (e.g. s3.amazonaws.com)
    if len(labels) >= 4 and ".".join(labels[-3:]) in TWO_LABEL_SUFFIXES:
        return ".".join(labels[-4:])
    if len(labels) >= 3 and ".".join(labels[-2:]) in TWO_LABEL_SUFFIXES:
        return ".".join(labels[-3:])
    if ".".join(labels[-2:]) in TWO_LABEL_SUFFIXES:
        return domain
    if ".".join(labels[-3:]) in TWO_LABEL_SUFFIXES:
        return domain
    return ".".join(labels[-2:])


def is_subdomain_of(domain: str, parent: str) -> bool:
    """True when ``domain`` equals or is a subdomain of ``parent``.

    >>> is_subdomain_of("a.b.example.com", "example.com")
    True
    >>> is_subdomain_of("notexample.com", "example.com")
    False
    """
    domain = domain.strip(".").lower()
    parent = parent.strip(".").lower()
    return domain == parent or domain.endswith("." + parent)
