"""Columnar flow dataset.

The paper aggregates 34.4 billion flows with Spark; our laptop-scale
equivalent keeps flows in numpy columns with small string pools for
categorical fields (country, beam, service, domain, site, resolver).
Datasets in the hundreds of thousands to millions of rows filter and
group in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.constants import SECONDS_PER_DAY
from repro.flowmeter.records import FlowRecord, L7Protocol, L7_ORDER

_POOL_FIELDS = (
    "countries",
    "beams",
    "services",
    "domains",
    "sites",
    "resolvers",
)

_ARRAY_FIELDS = (
    "ts_start",
    "day",
    "hour_utc",
    "customer_id",
    "country_idx",
    "subscriber_type",
    "beam_idx",
    "l7_idx",
    "service_true_idx",
    "domain_idx",
    "bytes_up",
    "bytes_down",
    "duration_s",
    "sat_rtt_ms",
    "ground_rtt_ms",
    "resolver_idx",
    "dns_response_ms",
    "site_idx",
    "plan_down_mbps",
    "session_id",
    "qoe_rebuffer",
    "qoe_level",
    "qoe_switches",
)


@dataclass
class FlowFrame:
    """A table of flows: numpy columns + categorical pools."""

    # categorical pools
    countries: List[str]
    beams: List[str]
    services: List[str]
    domains: List[str]
    sites: List[str]
    resolvers: List[str]

    # columns (all 1-D, equal length)
    ts_start: np.ndarray        # seconds since capture start (f8)
    day: np.ndarray             # integer day index (i4)
    hour_utc: np.ndarray        # fractional UTC hour (f4)
    customer_id: np.ndarray     # i4
    country_idx: np.ndarray     # i2, index into countries
    subscriber_type: np.ndarray  # i1 (SubscriberType)
    beam_idx: np.ndarray        # i2, index into beams
    l7_idx: np.ndarray          # i1, index into L7_ORDER
    service_true_idx: np.ndarray  # i2, generator ground truth (-1 none)
    domain_idx: np.ndarray      # i4, index into domains (-1 none)
    bytes_up: np.ndarray        # f8
    bytes_down: np.ndarray      # f8
    duration_s: np.ndarray      # f4
    sat_rtt_ms: np.ndarray      # f4 (nan when not measured)
    ground_rtt_ms: np.ndarray   # f4 (nan)
    resolver_idx: np.ndarray    # i2 (-1)
    dns_response_ms: np.ndarray  # f4 (nan)
    site_idx: np.ndarray        # i2 (-1)
    plan_down_mbps: np.ndarray  # f4
    # Session/QoE quartet (added after the seed schema): optional at
    # construction — omitted columns are sentinel-backfilled, so
    # pre-session construction sites and old captures keep working.
    session_id: Optional[np.ndarray] = None    # i8, video session id (-1)
    qoe_rebuffer: Optional[np.ndarray] = None  # f4, rebuffer ratio (nan)
    qoe_level: Optional[np.ndarray] = None     # f4, mean ladder level (nan)
    qoe_switches: Optional[np.ndarray] = None  # i2, level switches (-1)

    def __post_init__(self) -> None:
        n = len(self.ts_start)
        for name in ("session_id", "qoe_rebuffer", "qoe_level", "qoe_switches"):
            if getattr(self, name) is None:
                setattr(
                    self,
                    name,
                    np.full(
                        n, self.COLUMN_FILL[name], dtype=self.COLUMN_DTYPES[name]
                    ),
                )
        for name in _ARRAY_FIELDS:
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} has mismatched length")
        # normalize the documented i4 dtype: every construction path
        # (generator, packet records, npz round-trips of old captures)
        # must agree or concatenation silently widens the column
        if self.customer_id.dtype != np.int32:
            self.customer_id = self.customer_id.astype(np.int32)

    def __len__(self) -> int:
        return len(self.ts_start)

    #: Estimated per-string overhead of a pooled CPython str object
    #: (header + ascii payload bookkeeping), used by :attr:`nbytes`.
    _POOL_STR_OVERHEAD = 49

    @property
    def nbytes(self) -> int:
        """Approximate resident size: column bytes + pool estimate.

        The column part is exact (``ndarray.nbytes``); the categorical
        pools are estimated as one interned CPython string each. Used
        for quick memory triage of captures and streaming windows.
        """
        columns = sum(getattr(self, name).nbytes for name in _ARRAY_FIELDS)
        pools = sum(
            len(entry) + self._POOL_STR_OVERHEAD
            for name in _POOL_FIELDS
            for entry in getattr(self, name)
        )
        return columns + pools

    def __repr__(self) -> str:
        mb = self.nbytes / 1e6
        pools = ", ".join(
            f"{name}={len(getattr(self, name))}" for name in _POOL_FIELDS
        )
        return f"FlowFrame(flows={len(self):,}, nbytes={mb:.1f} MB, {pools})"

    # -- selection -----------------------------------------------------

    def filter(self, mask: np.ndarray) -> "FlowFrame":
        """A new frame with rows where ``mask`` is True.

        Pools are *copied* (same strings, fresh list objects): mutating
        one frame's pool must never corrupt the frames derived from it.
        """
        kwargs = {name: getattr(self, name)[mask] for name in _ARRAY_FIELDS}
        return FlowFrame(
            countries=list(self.countries),
            beams=list(self.beams),
            services=list(self.services),
            domains=list(self.domains),
            sites=list(self.sites),
            resolvers=list(self.resolvers),
            **kwargs,
        )

    def country_mask(self, country: str) -> np.ndarray:
        """Boolean mask of flows from ``country``."""
        return self.country_idx == self.countries.index(country)

    def l7_mask(self, protocol: L7Protocol) -> np.ndarray:
        """Boolean mask of flows with protocol label ``protocol``."""
        return self.l7_idx == L7_ORDER.index(protocol)

    # -- derived columns -------------------------------------------------

    def l7_labels(self) -> List[L7Protocol]:
        """Protocol label per row (use sparingly — builds a list)."""
        return [L7_ORDER[i] for i in self.l7_idx]

    def bytes_total(self) -> np.ndarray:
        return self.bytes_up + self.bytes_down

    def download_throughput_bps(self) -> np.ndarray:
        """Gross download rate; nan where duration is 0."""
        with np.errstate(divide="ignore", invalid="ignore"):
            rate = self.bytes_down * 8.0 / self.duration_s
        rate = np.asarray(rate, dtype=np.float64)
        rate[~np.isfinite(rate)] = np.nan
        return rate

    def domain_strings(self) -> List[Optional[str]]:
        """Domain per row (None where unknown)."""
        return [self.domains[i] if i >= 0 else None for i in self.domain_idx]

    # -- grouping helpers --------------------------------------------------

    def groupby_country(self) -> Dict[str, np.ndarray]:
        """country name → boolean mask (absent countries omitted)."""
        groups: Dict[str, np.ndarray] = {}
        for idx, name in enumerate(self.countries):
            mask = self.country_idx == idx
            if mask.any():
                groups[name] = mask
        return groups

    def customer_day_totals(
        self, value: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Dict[tuple, float]:
        """Sum ``value`` per (customer, day) — the unit of Figures 5/7."""
        if mask is None:
            mask = np.ones(len(self), dtype=bool)
        keys_customer = self.customer_id[mask]
        keys_day = self.day[mask]
        values = value[mask]
        if len(values) == 0:  # reduceat rejects an empty segment list
            return {}
        combined = keys_customer.astype(np.int64) * 100_000 + keys_day.astype(np.int64)
        order = np.argsort(combined, kind="stable")
        combined = combined[order]
        values = values[order]
        boundaries = np.flatnonzero(np.diff(combined)) + 1
        sums = np.add.reduceat(values, np.concatenate(([0], boundaries)))
        unique = combined[np.concatenate(([0], boundaries))]
        return {
            (int(key // 100_000), int(key % 100_000)): float(total)
            for key, total in zip(unique, sums)
        }

    def split_by_day(self) -> Dict[int, "FlowFrame"]:
        """One frame per capture day (the operator ships daily logs)."""
        return {
            int(day): self.filter(self.day == day) for day in np.unique(self.day)
        }

    # -- persistence ---------------------------------------------------------

    def save_npz(self, path, compress: bool = True) -> None:
        """Persist the frame (columns + pools) to an ``.npz``.

        The paper ships daily flow summaries to long-term storage; this
        is the equivalent for synthetic captures — a 1 M-flow frame is
        a few tens of MB compressed and reloads in well under a second.
        ``compress=False`` trades disk for speed (what the capture
        cache uses: a multi-million-flow frame stores and reloads in
        a fraction of the compression time).
        """
        pools = {
            f"pool_{name}": np.array(getattr(self, name), dtype=object)
            for name in _POOL_FIELDS
        }
        columns = {name: getattr(self, name) for name in _ARRAY_FIELDS}
        writer = np.savez_compressed if compress else np.savez
        writer(path, **pools, **columns)

    @classmethod
    def load_npz(cls, path) -> "FlowFrame":
        """Load a frame written by :meth:`save_npz`.

        Every column is coerced to :attr:`COLUMN_DTYPES` — captures
        written before a dtype tightened (or by external tools) otherwise
        propagate drifted dtypes silently into every downstream
        aggregate. Columns added after a capture was written (the
        session/QoE columns) are backfilled with their sentinels so
        old captures keep loading.
        """
        with np.load(path, allow_pickle=True) as data:
            pools = {
                name: [str(x) for x in data[f"pool_{name}"]]
                for name in _POOL_FIELDS
            }
            present = set(data.files)
            n = len(data["ts_start"])
            columns = {
                name: (
                    data[name].astype(cls.COLUMN_DTYPES[name], copy=False)
                    if name in present
                    else np.full(
                        n, cls.COLUMN_FILL[name], dtype=cls.COLUMN_DTYPES[name]
                    )
                )
                for name in _ARRAY_FIELDS
            }
        return cls(**pools, **columns)

    # -- construction -------------------------------------------------------

    #: Documented column dtypes (see the field comments above) — the
    #: contract every construction path normalizes to.
    COLUMN_DTYPES = {
        "ts_start": np.float64,
        "day": np.int32,
        "hour_utc": np.float32,
        "customer_id": np.int32,
        "country_idx": np.int16,
        "subscriber_type": np.int8,
        "beam_idx": np.int16,
        "l7_idx": np.int8,
        "service_true_idx": np.int16,
        "domain_idx": np.int32,
        "bytes_up": np.float64,
        "bytes_down": np.float64,
        "duration_s": np.float32,
        "sat_rtt_ms": np.float32,
        "ground_rtt_ms": np.float32,
        "resolver_idx": np.int16,
        "dns_response_ms": np.float32,
        "site_idx": np.int16,
        "plan_down_mbps": np.float32,
        "session_id": np.int64,
        "qoe_rebuffer": np.float32,
        "qoe_level": np.float32,
        "qoe_switches": np.int16,
    }

    #: Sentinel value per column for rows where the column was not
    #: requested/measured — what a projected store materialization
    #: backfills so unrequested columns stay well-typed.
    COLUMN_FILL = {
        "ts_start": 0.0,
        "day": 0,
        "hour_utc": 0.0,
        "customer_id": 0,
        "country_idx": -1,
        "subscriber_type": -1,
        "beam_idx": -1,
        "l7_idx": 0,
        "service_true_idx": -1,
        "domain_idx": -1,
        "bytes_up": 0.0,
        "bytes_down": 0.0,
        "duration_s": 0.0,
        "sat_rtt_ms": np.nan,
        "ground_rtt_ms": np.nan,
        "resolver_idx": -1,
        "dns_response_ms": np.nan,
        "site_idx": -1,
        "plan_down_mbps": np.nan,
        "session_id": -1,
        "qoe_rebuffer": np.nan,
        "qoe_level": np.nan,
        "qoe_switches": -1,
    }

    @classmethod
    def empty(
        cls,
        countries: Sequence[str] = (),
        beams: Sequence[str] = (),
        services: Sequence[str] = (),
        domains: Sequence[str] = (),
        sites: Sequence[str] = (),
        resolvers: Sequence[str] = (),
    ) -> "FlowFrame":
        """A zero-row frame with the documented dtypes and given pools.

        Streaming captures use this for windows in which no customer
        produced a flow, so every stored window round-trips uniformly.
        """
        columns = {
            name: np.empty(0, dtype=dtype)
            for name, dtype in cls.COLUMN_DTYPES.items()
        }
        return cls(
            countries=list(countries),
            beams=list(beams),
            services=list(services),
            domains=list(domains),
            sites=list(sites),
            resolvers=list(resolvers),
            **columns,
        )

    @classmethod
    def concat(cls, frames: Sequence["FlowFrame"]) -> "FlowFrame":
        """Concatenate frames that share identical pools."""
        if not frames:
            raise ValueError("no frames to concatenate")
        first = frames[0]
        for frame in frames[1:]:
            for pool in _POOL_FIELDS:
                if getattr(frame, pool) != getattr(first, pool):
                    raise ValueError(
                        f"frames must share categorical pools ({pool} differs)"
                    )
        kwargs = {
            name: np.concatenate([getattr(frame, name) for frame in frames])
            for name in _ARRAY_FIELDS
        }
        return cls(
            countries=list(first.countries),
            beams=list(first.beams),
            services=list(first.services),
            domains=list(first.domains),
            sites=list(first.sites),
            resolvers=list(first.resolvers),
            **kwargs,
        )

    @classmethod
    def from_records(
        cls,
        records: Iterable[FlowRecord],
        country_of_client: Optional[Callable[[int], str]] = None,
    ) -> "FlowFrame":
        """Build a frame from packet-path :class:`FlowRecord` rows.

        Fields the packet path does not know (service ground truth,
        beam, plan) are left at their "unknown" sentinels.
        """
        records = list(records)
        countries: List[str] = []
        domains: List[str] = []
        domain_pool: Dict[str, int] = {}
        country_pool: Dict[str, int] = {}

        def intern_domain(name: Optional[str]) -> int:
            if not name:
                return -1
            if name not in domain_pool:
                domain_pool[name] = len(domains)
                domains.append(name)
            return domain_pool[name]

        def intern_country(client_ip: int) -> int:
            if country_of_client is None:
                return -1
            name = country_of_client(client_ip)
            if name not in country_pool:
                country_pool[name] = len(countries)
                countries.append(name)
            return country_pool[name]

        n = len(records)
        frame = cls(
            countries=countries,
            beams=[],
            services=[],
            domains=domains,
            sites=[],
            resolvers=[],
            ts_start=np.array([r.ts_start for r in records], dtype=np.float64),
            day=np.array([int(r.ts_start // SECONDS_PER_DAY) for r in records], dtype=np.int32),
            hour_utc=np.array(
                [(r.ts_start % SECONDS_PER_DAY) / 3600.0 for r in records], dtype=np.float32
            ),
            customer_id=np.array([r.client_ip & 0xFFFFFF for r in records], dtype=np.int32),
            country_idx=np.array([intern_country(r.client_ip) for r in records], dtype=np.int16),
            subscriber_type=np.full(n, -1, dtype=np.int8),
            beam_idx=np.full(n, -1, dtype=np.int16),
            l7_idx=np.array([L7_ORDER.index(r.l7) for r in records], dtype=np.int8),
            service_true_idx=np.full(n, -1, dtype=np.int16),
            domain_idx=np.array([intern_domain(r.domain) for r in records], dtype=np.int32),
            bytes_up=np.array([r.bytes_up for r in records], dtype=np.float64),
            bytes_down=np.array([r.bytes_down for r in records], dtype=np.float64),
            duration_s=np.array([r.duration_s for r in records], dtype=np.float32),
            sat_rtt_ms=np.array(
                [np.nan if r.sat_rtt_ms is None else r.sat_rtt_ms for r in records],
                dtype=np.float32,
            ),
            ground_rtt_ms=np.array(
                [np.nan if r.rtt_avg_ms is None else r.rtt_avg_ms for r in records],
                dtype=np.float32,
            ),
            resolver_idx=np.full(n, -1, dtype=np.int16),
            dns_response_ms=np.array(
                [np.nan if r.dns_response_ms is None else r.dns_response_ms for r in records],
                dtype=np.float32,
            ),
            site_idx=np.full(n, -1, dtype=np.int16),
            plan_down_mbps=np.full(n, np.nan, dtype=np.float32),
            session_id=np.full(n, -1, dtype=np.int64),
            qoe_rebuffer=np.full(n, np.nan, dtype=np.float32),
            qoe_level=np.full(n, np.nan, dtype=np.float32),
            qoe_switches=np.full(n, -1, dtype=np.int16),
        )
        return frame
