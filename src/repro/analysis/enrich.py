"""Data enrichment: country from the *anonymized* customer address.

Section 3.1: "we enrich the data by adding information about the
customer's country (obtained by mapping the encrypted customer subnet
to the corresponding country with the support of the SatCom operator)".

This works because CryptoPan is prefix-preserving: the operator's
per-country address pools map to stable anonymized prefixes, so whoever
holds the key (or a table of anonymized pool prefixes) can label
countries without ever seeing a real address. :class:`CountryEnricher`
reproduces exactly that join.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.internet.geo import COUNTRIES
from repro.net.cryptopan import PrefixPreservingAnonymizer
from repro.net.inet import ip_to_int

#: The operator's per-country /16 pools (mirrors the packet-level
#: network's address plan in :mod:`repro.satcom.network`).
_BASE_CUSTOMER_NET = "100.64.0.0"
POOL_PREFIX_LEN = 16


def country_pools() -> Dict[str, int]:
    """country → pool base address (one /16 per country)."""
    base = ip_to_int(_BASE_CUSTOMER_NET)
    return {
        name: base + (index << 16) for index, name in enumerate(COUNTRIES)
    }


class CountryEnricher:
    """Maps anonymized customer addresses back to countries.

    Built from the anonymizer key (operator side) or from a precomputed
    table of anonymized pool prefixes (analyst side — what the paper's
    authors received).
    """

    def __init__(self, anonymized_prefix_to_country: Dict[int, str]) -> None:
        self._table = dict(anonymized_prefix_to_country)

    @classmethod
    def from_anonymizer(
        cls,
        anonymizer: PrefixPreservingAnonymizer,
        pools: Optional[Dict[str, int]] = None,
        prefix_len: int = POOL_PREFIX_LEN,
    ) -> "CountryEnricher":
        """Anonymize each pool's base; prefix preservation guarantees
        every address in the pool shares the anonymized prefix."""
        pools = pools or country_pools()
        shift = 32 - prefix_len
        table = {
            anonymizer.anonymize_int(base) >> shift: country
            for country, base in pools.items()
        }
        return cls(table)

    def country_of(self, anonymized_address: int) -> Optional[str]:
        """Country of an anonymized customer address (None if unknown)."""
        return self._table.get(anonymized_address >> (32 - POOL_PREFIX_LEN))

    def label_records(self, records: Iterable) -> Dict[int, str]:
        """client_ip → country over a batch of flow records."""
        out: Dict[int, str] = {}
        for record in records:
            country = self.country_of(record.client_ip)
            if country is not None:
                out[record.client_ip] = country
        return out
