"""Command-line interface.

    python -m repro generate  --customers 600 --days 5 --out capture.npz \
                              [--workers 4] [--cache [--cache-dir DIR]]
    python -m repro generate  --scenario congested-beam --set workload.days=3
    python -m repro stream    --customers 600 --days 30 --dir capture/ \
                              [--window-days 1] [--resume]
    python -m repro fleet     --customers 600 --days 30 --dir fleet/ \
                              --partitions 8 [--max-parallel 4] [--resume]
    python -m repro scenarios [--names | --json]
    python -m repro stream-report --dir capture/ --which fig2,fig5
    python -m repro serve     --dir capture/ --port 8080 [--watch]
    python -m repro report    --dataset capture.npz --which table1,fig2
    python -m repro report    --scenario leo --which fig8
    python -m repro scorecard --dataset capture.npz
    python -m repro scorecard --compare leo-starlink
    python -m repro scorecard --scenario video-streaming \
                              --compare shaped-vs-unshaped
    python -m repro packet-sim
    python -m repro errant    --dataset capture.npz --country Spain --netem

``generate`` synthesizes a capture; ``stream`` runs the bounded-memory
windowed capture pipeline (checkpointed, resumable) and
``stream-report`` renders figures straight from its rollup sketches
without loading the flows back; ``fleet`` distributes one capture
across partitioned worker processes and merges their rollups
bit-identically to a single-process ``stream``; ``report`` regenerates the
requested tables/figures; ``scorecard`` prints the calibration
scorecard; ``packet-sim`` runs the Figure 1 packet-level validation;
``errant`` fits and compares access-link profiles. ``serve`` exposes a
capture directory's reports over HTTP (``--watch`` republishes as a
concurrently-running capture commits windows), and ``stream``/``fleet``
take ``--serve-port`` to serve the live rollup in-process while they
run (see :mod:`repro.serve`).

``generate``, ``stream``, ``fleet``, ``report`` and ``scorecard`` all
take ``--scenario NAME|file.toml`` plus repeatable ``--set key=value``
dotted-path overrides (see :mod:`repro.scenario`; ``repro scenarios``
lists the registry). Without ``--scenario`` the built-in
``baseline-geo`` is used, which is bit-identical to the pre-scenario
defaults. Explicit flags (``--customers``, ``--days``, ``--seed``,
``--workers``, ``--window-days``) beat ``--set``, which beats the
scenario file.

``report``, ``stream-report``, ``scorecard`` and ``errant`` accept a
frame ``.npz``, a stream capture directory, or a bare rollup ``.npz``
interchangeably — :func:`repro.analysis.source.load_capture`
auto-detects the shape and every report dispatches through
:mod:`repro.analysis.registry`. ``report``/``scorecard`` without
``--dataset`` generate the scenario's capture through the cache first.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.validation import build_scorecard

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario import Scenario


def _worker_count(value: str) -> int:
    """Positive worker count, or ``auto`` for one per core."""
    if value.strip().lower() == "auto":
        return 0  # ExecutionSpec.workers: 0 = one per core
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if parsed <= 0:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 1 (or 'auto' for one per core), got {parsed}"
        )
    return parsed


def _nonnegative_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value!r}"
        ) from None
    if parsed < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {parsed}"
        )
    return parsed


def _positive_int(value: str) -> int:
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        ) from None
    if parsed <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {parsed}"
        )
    return parsed


def _scenario_parent() -> argparse.ArgumentParser:
    """Shared ``--scenario``/``--set`` flags."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scenario",
        default=None,
        metavar="NAME|PATH",
        help="a registered scenario (see `repro scenarios`) or a "
        ".toml/.json scenario file; default baseline-geo",
    )
    parent.add_argument(
        "--set",
        action="append",
        dest="overrides",
        default=[],
        metavar="KEY=VALUE",
        help="dotted-path scenario override, repeatable "
        "(e.g. --set beams.utilization_scale=1.2)",
    )
    return parent


def _workload_parent() -> argparse.ArgumentParser:
    """Shared workload flags of ``generate`` and ``stream``.

    Defaults are ``None`` so the scenario's values apply unless the
    flag is given explicitly — explicit flags beat ``--set``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--customers",
        type=_positive_int,
        default=None,
        help="subscriber count (default: scenario value, 600)",
    )
    parent.add_argument(
        "--days",
        type=_positive_int,
        default=None,
        help="simulated days (default: scenario value, 5)",
    )
    parent.add_argument(
        "--seed", type=int, default=None, help="RNG seed (default 2022)"
    )
    parent.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        help="worker processes (a positive integer, or 'auto' for one "
        "per core); output is identical for any worker count",
    )
    return parent


def _serve_parent() -> argparse.ArgumentParser:
    """Shared live-serve flags of ``stream`` and ``fleet``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--serve-port",
        type=_nonnegative_int,
        default=None,
        metavar="PORT",
        help="serve live reports over HTTP while the capture runs "
        "(0 = ephemeral port, printed at startup)",
    )
    parent.add_argument(
        "--serve-host",
        default=None,
        metavar="HOST",
        help="bind address for --serve-port (default 127.0.0.1)",
    )
    parent.add_argument(
        "--serve-linger",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep serving this long after the capture completes",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'When Satellite is All You Have' (IMC 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    scenario_parent = _scenario_parent()
    workload_parent = _workload_parent()
    serve_parent = _serve_parent()

    gen = sub.add_parser(
        "generate",
        help="synthesize a flow capture",
        parents=[scenario_parent, workload_parent],
    )
    gen.add_argument("--out", default="capture.npz")
    gen.add_argument(
        "--cache",
        action="store_true",
        help="reuse/populate the content-keyed capture cache",
    )
    gen.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (implies --cache; default $REPRO_CACHE_DIR, "
        "$XDG_CACHE_HOME/repro, or ~/.cache/repro)",
    )

    stream = sub.add_parser(
        "stream",
        help="run a bounded-memory streaming capture into a directory",
        parents=[scenario_parent, workload_parent, serve_parent],
    )
    stream.add_argument(
        "--window-days",
        type=_positive_int,
        default=None,
        help="simulated days per window (part of the capture key)",
    )
    stream.add_argument("--dir", required=True, help="capture directory")
    stream.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted capture from its checkpoint",
    )
    stream.add_argument(
        "--max-windows",
        type=int,
        default=None,
        help="stop after N windows (checkpoint stays resumable)",
    )
    stream.add_argument(
        "--no-compress",
        action="store_true",
        help="spill raw npz windows (faster, ~3x more disk)",
    )
    stream.add_argument(
        "--pipeline-depth",
        type=_nonnegative_int,
        default=None,
        help="windows generated ahead of the spill/fold commit thread "
        "(0 = lockstep; default 1); output is identical at any depth",
    )
    stream.add_argument(
        "--engine",
        choices=("python", "vectorized"),
        default=None,
        help="packet-path compute engine (digest-identical; default "
        "python)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="run a distributed multi-process capture (partitioned, "
        "healed, merged)",
        parents=[scenario_parent, workload_parent, serve_parent],
    )
    fleet.add_argument("--dir", required=True, help="fleet directory")
    fleet.add_argument(
        "--partitions",
        type=_positive_int,
        default=None,
        help="disjoint shard-range partitions (default: scenario fleet "
        "value; merged digest is identical for any count)",
    )
    fleet.add_argument(
        "--max-parallel",
        type=_positive_int,
        default=None,
        help="worker subprocesses allowed at once (default: scenario "
        "fleet value, 4)",
    )
    fleet.add_argument(
        "--straggler-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill+heal a worker after this long without checkpoint "
        "progress (default: scenario fleet value, 120)",
    )
    fleet.add_argument(
        "--merge-tree",
        choices=("balanced", "left", "right", "random"),
        default="balanced",
        help="merge-tree shape (bytes are identical for every shape)",
    )
    fleet.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted fleet from its manifest and the "
        "partitions' checkpoints",
    )
    fleet.add_argument(
        "--window-days",
        type=_positive_int,
        default=None,
        help="simulated days per window (part of the capture key)",
    )
    fleet.add_argument(
        "--no-compress",
        action="store_true",
        help="spill raw npz windows (faster, ~3x more disk)",
    )

    scen = sub.add_parser(
        "scenarios", help="list the registered scenarios and their digests"
    )
    scen.add_argument(
        "--names",
        action="store_true",
        help="print bare names only (for scripting)",
    )
    scen.add_argument(
        "--json",
        action="store_true",
        help="emit the registry as JSON (name, digest, description, "
        "delay mode) for scripting",
    )

    from repro.analysis import registry

    all_reports = ",".join(registry.names())
    rollup_reports = ",".join(
        spec.name for spec in registry.specs() if spec.supports("rollup")
    )

    stream_rep = sub.add_parser(
        "stream-report",
        help="render figures from a capture's rollup sketches "
        "(no full-frame load)",
    )
    stream_rep.add_argument(
        "--dir", required=True, help="capture directory (or frame .npz)"
    )
    stream_rep.add_argument(
        "--which",
        default="all",
        help=f"comma list from {{{rollup_reports}}} or 'all'",
    )

    serve = sub.add_parser(
        "serve",
        help="serve a capture directory's reports over HTTP (live-"
        "updating with --watch)",
    )
    serve.add_argument(
        "--dir", required=True, help="capture directory or rollup .npz"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=_nonnegative_int,
        default=0,
        help="TCP port (0 = ephemeral, printed at startup)",
    )
    serve.add_argument(
        "--watch",
        action="store_true",
        help="poll the capture's checkpoint and republish when new "
        "windows commit (serve a capture another process is running)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this long (default: serve until interrupted)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="--watch checkpoint poll cadence (default 0.25)",
    )

    rep = sub.add_parser(
        "report",
        help="regenerate tables/figures",
        parents=[scenario_parent],
    )
    rep.add_argument(
        "--dataset",
        default=None,
        help="frame .npz, stream capture directory, or rollup .npz "
        "(auto-detected); omitted: generate the scenario's capture "
        "through the cache",
    )
    rep.add_argument(
        "--which",
        default="all",
        help=f"comma list from {{{all_reports}}} or 'all'",
    )

    score = sub.add_parser(
        "scorecard",
        help="calibration scorecard",
        parents=[scenario_parent],
    )
    score.add_argument(
        "--dataset",
        default=None,
        help="frame .npz or stream capture directory (auto-detected); "
        "omitted: generate the scenario's capture through the cache",
    )
    score.add_argument(
        "--compare",
        default=None,
        metavar="NAME|PATH",
        help="second scenario to run the same workload under (same "
        "--set/flag overrides) and diff the satellite-delay profile "
        "against, e.g. --compare leo-starlink for GEO vs LEO",
    )

    psim = sub.add_parser("packet-sim", help="packet-level methodology validation")
    psim.add_argument(
        "--engine",
        choices=("python", "vectorized"),
        default="python",
        help="flow-meter compute engine (records are identical)",
    )

    mixed = sub.add_parser(
        "mixed-sim", help="TLS 1.3 / HTTP / QUIC / RTP through the packet path"
    )
    mixed.add_argument("--country", default="Spain")
    mixed.add_argument("--n", type=int, default=3, help="clients per protocol")
    mixed.add_argument(
        "--engine",
        choices=("python", "vectorized"),
        default="python",
        help="flow-meter compute engine (records are identical)",
    )

    err = sub.add_parser("errant", help="fit/compare ERRANT profiles")
    err.add_argument("--dataset", required=True)
    err.add_argument("--country", default="Spain")
    err.add_argument("--netem", action="store_true", help="print tc netem commands")

    return parser


def _scenario_from_args(
    args: argparse.Namespace, scenario_name: Optional[str] = None
) -> "Scenario":
    """Resolve ``--scenario``, apply ``--set``, then explicit flags.

    Precedence: scenario file < ``--set`` < explicit flags. Raises
    :class:`~repro.scenario.ScenarioError` (mapped to exit 2 by
    :func:`main`) on unknown names, paths, or invalid values.
    ``scenario_name`` substitutes the base scenario while keeping the
    command line's overrides (``scorecard --compare`` runs the same
    workload under a second scenario this way).
    """
    from repro.scenario import ScenarioError, resolve_scenario

    scenario = resolve_scenario(scenario_name or args.scenario or "baseline-geo")
    overrides = {}
    for item in args.overrides:
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise ScenarioError(item, "--set expects KEY=VALUE")
        overrides[key.strip()] = value
    scenario = scenario.with_overrides(overrides)
    flags = {}
    if getattr(args, "customers", None) is not None:
        flags["population.n_customers"] = args.customers
    if getattr(args, "days", None) is not None:
        flags["workload.days"] = args.days
    if getattr(args, "seed", None) is not None:
        flags["workload.seed"] = args.seed
    if getattr(args, "workers", None) is not None:
        flags["execution.workers"] = args.workers
    if getattr(args, "window_days", None) is not None:
        flags["stream.window_days"] = args.window_days
    if getattr(args, "no_compress", False):
        flags["execution.compress"] = False
    if getattr(args, "pipeline_depth", None) is not None:
        flags["execution.pipeline_depth"] = args.pipeline_depth
    if getattr(args, "engine", None) is not None:
        flags["execution.engine"] = args.engine
    if getattr(args, "serve_port", None) is not None:
        flags["serve.enabled"] = True
        flags["serve.port"] = args.serve_port
    if getattr(args, "serve_host", None) is not None:
        flags["serve.host"] = args.serve_host
    if getattr(args, "serve_linger", None) is not None:
        flags["serve.linger_s"] = args.serve_linger
    return scenario.with_overrides(flags, source="flag")


def _cmd_generate(args: argparse.Namespace) -> int:
    import time

    from repro.pipeline import generate_flow_dataset

    scenario = _scenario_from_args(args)
    cache = args.cache_dir if args.cache_dir is not None else bool(args.cache)
    started = time.perf_counter()
    frame, generator = generate_flow_dataset(scenario=scenario, cache=cache)
    elapsed = time.perf_counter() - started
    frame.save_npz(args.out)
    workers = scenario.execution.workers
    print(
        f"wrote {args.out}: {len(frame):,} flows, "
        f"{len(generator.population)} customers, {scenario.workload.days} days "
        f"(scenario {scenario.name}, digest {scenario.digest()}; "
        f"{elapsed:.1f} s with {workers or 'auto'} worker(s))"
    )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.scenario import get_scenario, scenario_names

    if args.names:
        for name in scenario_names():
            print(name)
        return 0
    if args.json:
        payload = [
            {
                "name": name,
                "digest": (scenario := get_scenario(name)).digest(),
                "description": scenario.description,
                "delay": scenario.constellation.mode,
            }
            for name in scenario_names()
        ]
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(name) for name in scenario_names())
    for name in scenario_names():
        scenario = get_scenario(name)
        print(f"{name:{width}s}  {scenario.digest()}  {scenario.description}")
    return 0


def _start_live_server(spec):
    """A running (hub, server) pair for a ``serve``-enabled scenario."""
    from repro.serve import ServerThread, SnapshotHub

    hub = SnapshotHub()
    server = ServerThread(
        hub,
        host=spec.host,
        port=spec.port,
        max_inflight=spec.max_inflight,
    ).start()
    print(
        f"serving live reports on http://{server.host}:{server.port} "
        "(/reports, /progress, /telemetry, /scorecard, /capabilities)",
        file=sys.stderr,
    )
    return hub, server


def _finish_live_server(server, linger_s: float) -> None:
    """Linger (so pollers catch the final state), stop, print counters."""
    import time

    from repro.serve import render_serve_telemetry

    if linger_s > 0:
        print(
            f"capture done; serving final state for {linger_s:g} s more",
            file=sys.stderr,
        )
        time.sleep(linger_s)
    server.stop()
    if server.stats.requests_total:
        print(render_serve_telemetry(server.stats))


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.analysis.source import CaptureError
    from repro.stream import render_telemetry, run_stream_capture

    scenario = _scenario_from_args(args)
    config = scenario.stream_config()
    hub = server = None
    if scenario.serve.enabled:
        hub, server = _start_live_server(scenario.serve)
    try:
        result = run_stream_capture(
            config,
            args.dir,
            resume=args.resume,
            max_windows=args.max_windows,
            on_window=lambda t: print(
                f"window {t.window}: days [{t.day_lo},{t.day_hi}) "
                f"{t.flows:,} flows in {t.busy_seconds:.1f} s",
                file=sys.stderr,
            ),
            snapshot_hub=hub,
        )
    except CaptureError as exc:
        if server is not None:
            server.stop()
        print(f"cannot run capture: {exc}", file=sys.stderr)
        return 2
    if server is not None:
        _finish_live_server(server, scenario.serve.linger_s)
    print(render_telemetry(result.telemetry))
    if result.fault_stats.faults or result.fault_stats.retries:
        print(result.fault_stats.summary())
    done = result.checkpoint.windows_done
    state = "complete" if result.complete else f"resumable with --resume --dir {args.dir}"
    print(
        f"capture {result.store.capture_key}: {done}/{result.checkpoint.n_windows} "
        f"windows in {args.dir} ({state})"
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.analysis.source import CaptureError
    from repro.fleet import render_fleet_telemetry, run_fleet_capture

    scenario = _scenario_from_args(args)
    hub = server = None
    if scenario.serve.enabled:
        hub, server = _start_live_server(scenario.serve)
    try:
        result = run_fleet_capture(
            scenario,
            args.dir,
            partitions=args.partitions,
            max_parallel=args.max_parallel,
            straggler_timeout_s=args.straggler_timeout,
            merge_tree=args.merge_tree,
            resume=args.resume,
            on_event=lambda line: print(line, file=sys.stderr),
            snapshot_hub=hub,
        )
    except (CaptureError, FileExistsError, FileNotFoundError) as exc:
        if server is not None:
            server.stop()
        print(f"cannot run fleet capture: {exc}", file=sys.stderr)
        return 2
    if server is not None:
        _finish_live_server(server, scenario.serve.linger_s)
    print(render_fleet_telemetry(result.telemetry_rows))
    if result.fault_stats.faults or result.fault_stats.retries:
        print(result.fault_stats.summary())
    print(
        f"fleet {result.plan.base_capture_key}: "
        f"{result.plan.n_partitions} partitions, "
        f"{result.total_heals} heals, merged digest {result.digest} "
        f"-> {result.merged_path}"
    )
    return 0


def _open_capture(path: str):
    """``load_capture`` with CLI error reporting; None means exit 2."""
    from repro.analysis.source import CaptureError, load_capture

    try:
        return load_capture(path)
    except CaptureError as exc:
        print(f"cannot open capture: {exc}", file=sys.stderr)
        return None


def _run_reports(source, which: str, prefer=None) -> int:
    """Dispatch ``--which`` through the report registry."""
    from repro.analysis import registry
    from repro.analysis.source import CaptureError

    kind = "rollup" if prefer == "rollup" else source.kind
    if which == "all":
        names = [s.name for s in registry.specs() if s.supports(kind)]
        skipped = [s.name for s in registry.specs() if not s.supports(kind)]
        if skipped:
            print(
                f"skipping {', '.join(skipped)}: need flow records, not "
                "computable from rollup sketches",
                file=sys.stderr,
            )
    else:
        names = [name.strip() for name in which.split(",")]
    for name in names:
        try:
            rendered = registry.run(name, source, prefer=prefer)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except CaptureError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(rendered)
        print()
    return 0


def _cmd_stream_report(args: argparse.Namespace) -> int:
    from repro.analysis.source import CaptureError
    from repro.stream import load_checkpoint

    source = _open_capture(args.dir)
    if source is None:
        return 2
    if source.kind == "store":
        try:
            checkpoint = load_checkpoint(args.dir)
        except CaptureError as exc:
            print(f"cannot read checkpoint: {exc}", file=sys.stderr)
            return 2
        if checkpoint is not None and not checkpoint.complete:
            print(
                f"note: capture is partial ({checkpoint.windows_done}/"
                f"{checkpoint.n_windows} windows, "
                f"{checkpoint.progress():.0%}); figures cover the folded "
                "windows only",
                file=sys.stderr,
            )
    return _run_reports(source, args.which, prefer="rollup")


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.source import CaptureError
    from repro.serve import (
        ServerThread,
        SnapshotHub,
        render_serve_telemetry,
        snapshot_from_capture,
    )

    hub = SnapshotHub()
    try:
        snapshot = snapshot_from_capture(args.dir)
    except CaptureError as exc:
        print(f"cannot serve capture: {exc}", file=sys.stderr)
        return 2
    hub.publish(snapshot)
    try:
        server = ServerThread(hub, host=args.host, port=args.port).start()
    except (RuntimeError, OSError) as exc:
        print(f"cannot start server: {exc}", file=sys.stderr)
        return 2
    print(
        f"serving {args.dir} on http://{server.host}:{server.port} "
        f"({snapshot.windows_done}/{snapshot.n_windows} windows, "
        f"{snapshot.progress:.0%}, digest {snapshot.digest[:12]})"
        + (", watching for new commits" if args.watch else ""),
        file=sys.stderr,
    )
    deadline = (
        time.monotonic() + args.duration if args.duration is not None else None
    )
    try:
        while deadline is None or time.monotonic() < deadline:
            wait = args.poll_interval
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            time.sleep(wait)
            if not args.watch:
                continue
            try:
                fresh = snapshot_from_capture(args.dir)
            except CaptureError:
                continue  # mid-commit; keep serving the last snapshot
            if fresh.digest != snapshot.digest:
                snapshot = fresh
                hub.publish(snapshot)
                print(
                    f"republished: {snapshot.windows_done}/"
                    f"{snapshot.n_windows} windows "
                    f"({snapshot.progress:.0%}, digest "
                    f"{snapshot.digest[:12]})",
                    file=sys.stderr,
                )
    except KeyboardInterrupt:
        pass
    server.stop()
    if server.stats.requests_total:
        print(render_serve_telemetry(server.stats))
    return 0


def _source_from_args(args: argparse.Namespace):
    """``--dataset`` capture, or the scenario's capture via the cache."""
    if args.dataset is not None:
        return _open_capture(args.dataset)
    from repro.analysis.source import FrameSource
    from repro.pipeline import generate_flow_dataset

    scenario = _scenario_from_args(args)
    print(
        f"generating scenario {scenario.name} "
        f"(digest {scenario.digest()}) through the cache",
        file=sys.stderr,
    )
    frame, _ = generate_flow_dataset(scenario=scenario, cache=True)
    return FrameSource(frame)


def _cmd_report(args: argparse.Namespace) -> int:
    source = _source_from_args(args)
    if source is None:
        return 2
    return _run_reports(source, args.which)


def _cmd_scorecard(args: argparse.Namespace) -> int:
    from repro.analysis.source import CaptureError

    source = _source_from_args(args)
    if source is None:
        return 2
    try:
        frame = source.to_frame()
    except CaptureError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    scorecard = build_scorecard(frame)
    print(scorecard.render())
    if args.compare is not None:
        import numpy as np

        from repro.analysis.validation import (
            render_delay_comparison,
            render_qoe_comparison,
        )
        from repro.pipeline import generate_flow_dataset

        base = _scenario_from_args(args)
        other = _scenario_from_args(args, scenario_name=args.compare)
        print(
            f"generating comparison scenario {other.name} "
            f"(digest {other.digest()}) through the cache",
            file=sys.stderr,
        )
        other_frame, _ = generate_flow_dataset(scenario=other, cache=True)
        print()
        print(
            render_delay_comparison(
                frame, other_frame, label_a=base.name, label_b=other.name
            )
        )
        if np.any(frame.session_id >= 0) or np.any(other_frame.session_id >= 0):
            print()
            print(
                render_qoe_comparison(
                    frame, other_frame, label_a=base.name, label_b=other.name
                )
            )
    return 0 if scorecard.passed == scorecard.total else 1


def _cmd_packet_sim(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.pipeline import run_packet_simulation

    result = run_packet_simulation(engine=args.engine)
    sats = np.array([r.sat_rtt_ms for r in result.tls_records])
    grounds = np.array([r.rtt_avg_ms for r in result.tls_records])
    print(
        f"packet-level validation: {len(result.tls_records)} TLS flows; "
        f"satellite RTT min/median {sats.min():.0f}/{np.median(sats):.0f} ms; "
        f"ground RTT median {np.median(grounds):.1f} ms; "
        f"DNS at probe "
        f"{[round(r.dns_response_ms or 0) for r in result.dns_records]} ms"
    )
    return 0


def _cmd_errant(args: argparse.Namespace) -> int:
    from repro.analysis.source import CaptureError
    from repro.errant.emulator import Emulator, compare_profiles
    from repro.errant.model import fit_profile
    from repro.errant.profiles import BUILTIN_PROFILES

    source = _open_capture(args.dataset)
    if source is None:
        return 2
    try:
        frame = source.to_frame()
    except CaptureError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    fitted = fit_profile(frame, args.country)
    profiles = dict(BUILTIN_PROFILES)
    profiles[fitted.name] = fitted
    print(
        f"fitted {fitted.name}: rtt median {fitted.rtt_median_ms:.0f} ms, "
        f"down {fitted.down_median_mbps:.1f} Mb/s, up {fitted.up_median_mbps:.1f} Mb/s"
    )
    times = compare_profiles(profiles, size_bytes=1_000_000, n=200)
    for name, value in sorted(times.items(), key=lambda kv: kv[1]):
        print(f"  1 MB fetch, {name:28s} {value:6.2f} s")
    if args.netem:
        for command in Emulator(fitted).netem_commands():
            print(command)
    return 0


def _cmd_mixed_sim(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.pipeline import run_mixed_protocol_simulation

    result = run_mixed_protocol_simulation(
        country=args.country, n_each=args.n, engine=args.engine
    )
    by_l7 = {}
    for record in result.records:
        by_l7.setdefault(record.l7.value, []).append(record)
    for label, records in sorted(by_l7.items()):
        domains = {r.domain for r in records if r.domain}
        print(f"{label:10s} {len(records):3d} flows  domains={sorted(domains)}")
    sats = [r.sat_rtt_ms for r in result.records_of("tcp/https")]
    rtts = [t for s in result.rtp_sessions for t in s.round_trips_s]
    print(
        f"TLS 1.3 satellite RTT via client CCS: median {np.median(sats):.0f} ms; "
        f"RTP mouth-to-ear: {np.mean(rtts) * 1000:.0f} ms"
    )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stream": _cmd_stream,
    "fleet": _cmd_fleet,
    "scenarios": _cmd_scenarios,
    "stream-report": _cmd_stream_report,
    "serve": _cmd_serve,
    "report": _cmd_report,
    "scorecard": _cmd_scorecard,
    "packet-sim": _cmd_packet_sim,
    "mixed-sim": _cmd_mixed_sim,
    "errant": _cmd_errant,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (returns an exit code)."""
    from repro.scenario import ScenarioError

    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
