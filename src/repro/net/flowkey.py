"""Bidirectional flow keys.

Tstat tracks flows by the classic 5-tuple; a :class:`FiveTuple` is
canonicalized so both directions of a connection map to the same key,
and :meth:`FiveTuple.from_packet` reports which direction the packet
travelled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.net.packet import IPProtocol, Packet


class Direction(enum.Enum):
    """Packet direction relative to the canonical flow key."""

    CLIENT_TO_SERVER = "c2s"
    SERVER_TO_CLIENT = "s2c"

    def flipped(self) -> "Direction":
        """The opposite direction."""
        if self is Direction.CLIENT_TO_SERVER:
            return Direction.SERVER_TO_CLIENT
        return Direction.CLIENT_TO_SERVER


@dataclass(frozen=True)
class FiveTuple:
    """Canonical bidirectional flow identifier.

    The *client* side is defined as the endpoint that sent the first
    packet the tracker saw (for TCP, normally the SYN sender). The
    canonical form therefore preserves client/server roles rather than
    sorting endpoints, matching Tstat's semantics.
    """

    client_ip: int
    client_port: int
    server_ip: int
    server_port: int
    protocol: IPProtocol

    @classmethod
    def from_packet(cls, packet: Packet) -> Tuple["FiveTuple", Direction]:
        """Key assuming ``packet`` travels client→server."""
        key = cls(
            client_ip=packet.src_ip,
            client_port=packet.src_port,
            server_ip=packet.dst_ip,
            server_port=packet.dst_port,
            protocol=packet.protocol,
        )
        return key, Direction.CLIENT_TO_SERVER

    def reversed(self) -> "FiveTuple":
        """The same flow keyed from the server's perspective."""
        return FiveTuple(
            client_ip=self.server_ip,
            client_port=self.server_port,
            server_ip=self.client_ip,
            server_port=self.client_port,
            protocol=self.protocol,
        )

    def direction_of(self, packet: Packet) -> Direction:
        """Which way ``packet`` travels within this flow.

        Raises ``ValueError`` if the packet does not belong to the flow.
        """
        if (
            packet.src_ip == self.client_ip
            and packet.src_port == self.client_port
            and packet.dst_ip == self.server_ip
            and packet.dst_port == self.server_port
        ):
            return Direction.CLIENT_TO_SERVER
        if (
            packet.src_ip == self.server_ip
            and packet.src_port == self.server_port
            and packet.dst_ip == self.client_ip
            and packet.dst_port == self.client_port
        ):
            return Direction.SERVER_TO_CLIENT
        raise ValueError("packet does not belong to this flow")
