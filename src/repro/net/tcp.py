"""Simulated TCP endpoint.

A deliberately compact TCP implementation for the packet-level
simulator: three-way handshake, byte-stream sequencing with cumulative
ACKs, MSS segmentation, a fixed sliding window, orderly FIN teardown,
and (optionally, via ``rto_s``) a go-back-N retransmission timer with
exponential backoff for lossy ground paths. Congestion control is
deliberately absent — that is exactly what the PEP decouples away.

The endpoint emits :class:`repro.net.packet.Packet` objects through a
caller-supplied ``send_packet`` callable, which is where the
ground-station monitor taps the wire.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.net.packet import IPProtocol, Packet, TCPFlags
from repro.simnet.engine import Simulator

_SEQ_MOD = 1 << 32
DEFAULT_MSS = 1460
DEFAULT_WINDOW = 256 * 1024


class TcpState(enum.Enum):
    """Connection states (subset of RFC 793)."""

    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"


class TcpEndpoint:
    """One side of a TCP connection.

    Callbacks:

    * ``on_established()`` — handshake completed.
    * ``on_data(bytes)`` — in-order payload delivered.
    * ``on_closed()`` — both FINs exchanged (or reset).
    """

    def __init__(
        self,
        sim: Simulator,
        local_ip: int,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        send_packet: Callable[[Packet], None],
        on_data: Optional[Callable[[bytes], None]] = None,
        on_established: Optional[Callable[[], None]] = None,
        on_closed: Optional[Callable[[], None]] = None,
        mss: int = DEFAULT_MSS,
        window_bytes: int = DEFAULT_WINDOW,
        rto_s: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self._send_packet = send_packet
        self.on_data = on_data
        self.on_established = on_established
        self.on_closed = on_closed
        self.mss = mss
        self.window_bytes = window_bytes

        self.rto_s = rto_s
        self.retransmissions = 0

        self.state = TcpState.CLOSED
        self._snd_nxt = 0  # next byte to send (absolute stream offset)
        self._snd_una = 0  # oldest unacknowledged byte
        self._rcv_nxt = 0  # next expected byte from peer
        self._send_buffer = bytearray()
        self._close_requested = False
        self._fin_sent = False
        self._fin_acked = False
        self._fin_received = False
        self._outstanding: list = []  # [(seq_abs, payload)] in order
        self._timer = None
        self._backoff = 1.0

    # -- public API ----------------------------------------------------

    def connect(self) -> None:
        """Active open: send SYN."""
        if self.state != TcpState.CLOSED:
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = TcpState.SYN_SENT
        if self.rto_s is not None:
            self._arm_timer()
        self._emit(TCPFlags.SYN, seq=0, ack_flag=False)
        self._snd_nxt = 1  # SYN consumes one sequence number
        self._snd_una = 1

    def listen(self) -> None:
        """Passive open."""
        if self.state != TcpState.CLOSED:
            raise RuntimeError(f"listen() in state {self.state}")
        self.state = TcpState.LISTEN

    def send(self, data: bytes) -> None:
        """Queue application data for transmission."""
        if self._close_requested:
            raise RuntimeError("send() after close()")
        self._send_buffer += data
        self._pump()

    def close(self) -> None:
        """Orderly shutdown once the send buffer drains."""
        self._close_requested = True
        self._pump()

    def abort(self) -> None:
        """Send RST and drop the connection."""
        self._emit(TCPFlags.RST | TCPFlags.ACK)
        self._become_closed()

    @property
    def bytes_in_flight(self) -> int:
        return self._snd_nxt - self._snd_una

    @property
    def is_established(self) -> bool:
        return self.state == TcpState.ESTABLISHED

    @property
    def is_closed(self) -> bool:
        return self.state == TcpState.CLOSED

    # -- packet handling ------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Process a packet addressed to this endpoint."""
        if packet.has_flag(TCPFlags.RST):
            self._become_closed()
            return

        if self.state == TcpState.LISTEN:
            if packet.has_flag(TCPFlags.SYN):
                self.state = TcpState.SYN_RCVD
                self._rcv_nxt = 1
                self._emit(TCPFlags.SYN | TCPFlags.ACK, seq=0)
                self._snd_nxt = 1
                self._snd_una = 1
            return

        if self.state == TcpState.SYN_SENT:
            if packet.has_flag(TCPFlags.SYN) and packet.has_flag(TCPFlags.ACK):
                self._rcv_nxt = 1
                self._snd_una = 1
                self.state = TcpState.ESTABLISHED
                self._emit(TCPFlags.ACK)
                if self.on_established:
                    self.on_established()
                self._pump()
            return

        if self.state == TcpState.SYN_RCVD:
            if packet.has_flag(TCPFlags.SYN):
                # Duplicate SYN: our SYN-ACK was lost — resend it.
                self._emit(TCPFlags.SYN | TCPFlags.ACK, seq=0)
                return
            if packet.has_flag(TCPFlags.ACK) and packet.ack >= 1:
                self.state = TcpState.ESTABLISHED
                if self.on_established:
                    self.on_established()
                # fall through: the ACK may carry data

        self._handle_ack(packet)
        self._handle_payload(packet)
        self._handle_fin(packet)
        self._pump()
        self._maybe_finish_close()

    # -- internals -------------------------------------------------------

    def _handle_ack(self, packet: Packet) -> None:
        if not packet.has_flag(TCPFlags.ACK):
            return
        ack = packet.ack
        if ack > self._snd_una:
            self._snd_una = ack
            self._backoff = 1.0  # progress: reset the RTO backoff
            self._outstanding = [
                (seq, payload)
                for seq, payload in self._outstanding
                if seq + len(payload) > ack
            ]
        fin_seq_end = self._snd_nxt  # FIN consumed the last number
        if self._fin_sent and ack >= fin_seq_end:
            self._fin_acked = True

    def _handle_payload(self, packet: Packet) -> None:
        if packet.payload_len == 0:
            return
        if packet.seq != self._rcv_nxt % _SEQ_MOD and packet.seq != self._rcv_nxt:
            # Duplicate (already delivered) or a gap after a loss: re-ACK
            # so the sender learns our cumulative position; go-back-N
            # retransmission fills gaps in order.
            self._emit(TCPFlags.ACK)
            return
        self._rcv_nxt += packet.payload_len
        self._emit(TCPFlags.ACK)
        if self.on_data:
            self.on_data(packet.payload)

    def _handle_fin(self, packet: Packet) -> None:
        if not packet.has_flag(TCPFlags.FIN):
            return
        expected = self._rcv_nxt + packet.payload_len if packet.payload_len else self._rcv_nxt
        del expected  # payload already consumed by _handle_payload
        self._fin_received = True
        self._rcv_nxt += 1
        self._emit(TCPFlags.ACK)
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT

    def _pump(self) -> None:
        """Transmit as much buffered data as the window allows."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT, TcpState.FIN_WAIT):
            return
        while self._send_buffer and self.bytes_in_flight < self.window_bytes:
            chunk_len = min(self.mss, len(self._send_buffer), self.window_bytes - self.bytes_in_flight)
            chunk = bytes(self._send_buffer[:chunk_len])
            del self._send_buffer[:chunk_len]
            if self.rto_s is not None:
                self._outstanding.append((self._snd_nxt, chunk))
                self._arm_timer()
            self._emit(TCPFlags.ACK | TCPFlags.PSH, payload=chunk, seq=self._snd_nxt)
            self._snd_nxt += chunk_len
        if self._close_requested and not self._send_buffer and not self._fin_sent:
            self._fin_sent = True
            if self.rto_s is not None:
                self._arm_timer()
            self._emit(TCPFlags.FIN | TCPFlags.ACK, seq=self._snd_nxt)
            self._snd_nxt += 1
            if self.state == TcpState.ESTABLISHED:
                self.state = TcpState.FIN_WAIT
            elif self.state == TcpState.CLOSE_WAIT:
                self.state = TcpState.LAST_ACK

    def _maybe_finish_close(self) -> None:
        if self._fin_sent and self._fin_acked and self._fin_received:
            self._become_closed()

    # -- retransmission (enabled via rto_s) --------------------------------

    def _arm_timer(self) -> None:
        if self._timer is None and self.rto_s is not None:
            self._timer = self.sim.schedule(
                self.rto_s * self._backoff, self._on_timeout
            )

    def _on_timeout(self) -> None:
        self._timer = None
        if self.state == TcpState.CLOSED:
            return
        if self.state == TcpState.SYN_SENT:
            self.retransmissions += 1
            self._backoff = min(self._backoff * 2.0, 16.0)
            self._emit(TCPFlags.SYN, seq=0, ack_flag=False)
            self._arm_timer()
            return
        needs_fin = self._fin_sent and not self._fin_acked
        if not self._outstanding and not needs_fin:
            return  # everything acked; let the timer lapse
        self._backoff = min(self._backoff * 2.0, 16.0)
        # Go-back-N: re-emit every unacknowledged segment in order.
        for seq, payload in self._outstanding:
            self.retransmissions += 1
            self._emit(TCPFlags.ACK | TCPFlags.PSH, payload=payload, seq=seq)
        if needs_fin:
            self.retransmissions += 1
            self._emit(TCPFlags.FIN | TCPFlags.ACK, seq=self._snd_nxt - 1)
        self._arm_timer()

    def _become_closed(self) -> None:
        if self.state == TcpState.CLOSED:
            return
        self.state = TcpState.CLOSED
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._outstanding.clear()
        if self.on_closed:
            self.on_closed()

    def _emit(
        self,
        flags: TCPFlags,
        payload: bytes = b"",
        seq: Optional[int] = None,
        ack_flag: bool = True,
    ) -> None:
        packet = Packet(
            src_ip=self.local_ip,
            dst_ip=self.remote_ip,
            src_port=self.local_port,
            dst_port=self.remote_port,
            protocol=IPProtocol.TCP,
            payload=payload,
            flags=flags,
            seq=(self._snd_nxt if seq is None else seq) % _SEQ_MOD,
            ack=self._rcv_nxt % _SEQ_MOD if (flags & TCPFlags.ACK) else 0,
            timestamp=self.sim.now,
        )
        self._send_packet(packet)
