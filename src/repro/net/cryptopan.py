"""Prefix-preserving IP anonymization (CryptoPan-style).

The paper anonymizes customer addresses in real time with CryptoPan
[Fan et al. 2004], whose defining property is *prefix preservation*: two
addresses sharing a k-bit prefix map to anonymized addresses sharing a
k-bit prefix (and no longer one, unless by construction).

CryptoPan instantiates its per-bit pseudo-random function with AES. No
AES primitive is available in this environment's dependency set, so we
instantiate the same construction with HMAC-SHA256 — the algorithm's
structure (Xiao's canonical form: the i-th output bit is the i-th input
bit XOR ``f(prefix_{i-1})``) and hence the prefix-preserving property
are identical. This substitution is documented in DESIGN.md §6.
"""

from __future__ import annotations

import hashlib
import hmac
from functools import lru_cache


class PrefixPreservingAnonymizer:
    """Deterministic, keyed, prefix-preserving IPv4 anonymizer.

    >>> anon = PrefixPreservingAnonymizer(b"secret key")
    >>> a = anon.anonymize_int(0x0A000001)  # 10.0.0.1
    >>> b = anon.anonymize_int(0x0A000002)  # 10.0.0.2
    >>> (a >> 8) == (b >> 8)  # /24 prefix preserved
    True
    """

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self._key = key
        # Memoize the per-prefix PRF: real traces reuse prefixes heavily.
        self._prf_bit = lru_cache(maxsize=1 << 16)(self._prf_bit_uncached)

    def _prf_bit_uncached(self, prefix_bits: int, prefix_len: int) -> int:
        """One pseudo-random bit from the length-``prefix_len`` prefix."""
        message = prefix_len.to_bytes(1, "big") + prefix_bits.to_bytes(4, "big")
        digest = hmac.new(self._key, message, hashlib.sha256).digest()
        return digest[0] & 1

    def anonymize_int(self, address: int) -> int:
        """Anonymize a 32-bit integer address."""
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError(f"address out of IPv4 range: {address}")
        result = 0
        for i in range(32):
            # prefix of length i (the i most-significant bits)
            prefix = address >> (32 - i) if i else 0
            flip = self._prf_bit(prefix, i)
            original_bit = (address >> (31 - i)) & 1
            result = (result << 1) | (original_bit ^ flip)
        return result

    def anonymize(self, address: str) -> str:
        """Anonymize a dotted-quad address string."""
        from repro.net.inet import ip_from_int, ip_to_int

        return ip_from_int(self.anonymize_int(ip_to_int(address)))

    def shared_prefix_len(self, a: int, b: int) -> int:
        """Length of the common prefix of two 32-bit addresses."""
        diff = a ^ b
        if diff == 0:
            return 32
        return 32 - diff.bit_length()
