"""Packet primitives: addressing, headers, flow keys, anonymization."""

from repro.net.inet import (
    IPv4Network,
    ip_from_int,
    ip_in_network,
    ip_to_int,
)
from repro.net.packet import IPProtocol, Packet, TCPFlags
from repro.net.flowkey import Direction, FiveTuple
from repro.net.cryptopan import PrefixPreservingAnonymizer

__all__ = [
    "IPv4Network",
    "ip_from_int",
    "ip_in_network",
    "ip_to_int",
    "IPProtocol",
    "Packet",
    "TCPFlags",
    "Direction",
    "FiveTuple",
    "PrefixPreservingAnonymizer",
]
