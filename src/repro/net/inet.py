"""IPv4 address arithmetic.

The standard library has :mod:`ipaddress`, but the flow meter and the
anonymizer work on integers in hot paths, so we provide thin, explicit
helpers plus a small :class:`IPv4Network` for allocation of customer and
server address pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


def ip_to_int(address: str) -> int:
    """Parse dotted-quad ``address`` into a 32-bit integer.

    >>> ip_to_int("10.0.0.1")
    167772161
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet in {address!r}")
        value = (value << 8) | octet
    return value


def ip_from_int(value: int) -> str:
    """Format a 32-bit integer as a dotted quad.

    >>> ip_from_int(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"value out of IPv4 range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ip_in_network(address: int, network: int, prefix_len: int) -> bool:
    """True when integer ``address`` falls inside ``network/prefix_len``."""
    if not 0 <= prefix_len <= 32:
        raise ValueError("prefix_len must be in [0, 32]")
    if prefix_len == 0:
        return True
    mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF
    return (address & mask) == (network & mask)


@dataclass(frozen=True)
class IPv4Network:
    """A CIDR block used to allocate simulated endpoint addresses."""

    base: int
    prefix_len: int

    @classmethod
    def parse(cls, cidr: str) -> "IPv4Network":
        """Parse ``a.b.c.d/len`` notation.

        >>> IPv4Network.parse("10.1.0.0/16").size
        65536
        """
        address, _, length = cidr.partition("/")
        if not length:
            raise ValueError(f"missing prefix length in {cidr!r}")
        prefix_len = int(length)
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"invalid prefix length in {cidr!r}")
        base = ip_to_int(address)
        mask = (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF if prefix_len else 0
        return cls(base=base & mask, prefix_len=prefix_len)

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix_len)

    def address(self, index: int) -> int:
        """The ``index``-th address in the block as an integer."""
        if not 0 <= index < self.size:
            raise IndexError(f"host index {index} out of range for /{self.prefix_len}")
        return self.base + index

    def __contains__(self, address: int) -> bool:
        return ip_in_network(address, self.base, self.prefix_len)

    def hosts(self) -> Iterator[int]:
        """Iterate over every address in the block."""
        return iter(range(self.base, self.base + self.size))

    def __str__(self) -> str:
        return f"{ip_from_int(self.base)}/{self.prefix_len}"
