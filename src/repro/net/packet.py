"""Simulated packet representation.

Packets carry enough header state for the flow meter to do everything
Tstat does in the paper: 5-tuple tracking, TCP sequence/ACK RTT
estimation, and DPI over the (real, wire-format) payload bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.constants import IPV4_HEADER_LEN, TCP_HEADER_LEN, UDP_HEADER_LEN


class IPProtocol(enum.IntEnum):
    """IP protocol numbers used in the simulation."""

    TCP = 6
    UDP = 17


class TCPFlags(enum.IntFlag):
    """TCP header flags (subset)."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


@dataclass
class Packet:
    """A simulated IPv4 packet.

    ``payload`` holds real protocol bytes (a TLS record, a DNS message…)
    so the DPI module parses genuine wire formats. Sequence and ACK
    numbers are plain Python ints; the flow meter handles them modulo
    2**32 like a real implementation would.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: IPProtocol
    payload: bytes = b""
    flags: TCPFlags = TCPFlags(0)
    seq: int = 0
    ack: int = 0
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.src_port <= 65535 or not 0 <= self.dst_port <= 65535:
            raise ValueError("port out of range")

    @property
    def payload_len(self) -> int:
        """Bytes of L4 payload."""
        return len(self.payload)

    @property
    def size_bytes(self) -> int:
        """Total on-the-wire size, including IP and L4 headers."""
        l4 = TCP_HEADER_LEN if self.protocol == IPProtocol.TCP else UDP_HEADER_LEN
        return IPV4_HEADER_LEN + l4 + len(self.payload)

    def has_flag(self, flag: TCPFlags) -> bool:
        """True when ``flag`` is set (TCP only)."""
        return bool(self.flags & flag)

    def reply_template(self) -> "Packet":
        """A packet skeleton going the opposite direction."""
        return Packet(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )
