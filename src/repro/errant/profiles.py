"""Built-in comparison profiles.

The paper positions its GEO model next to other access technologies;
the Starlink numbers follow Michel et al., "A First Look at Starlink
Performance" (IMC 2022, the paper's reference [26]): median RTT around
40–50 ms with high variability, downlink commonly 100–250 Mb/s. The
terrestrial profiles use the orders of magnitude of the ERRANT paper
and common FTTH/ADSL offerings.
"""

from __future__ import annotations

from typing import Dict

from repro.errant.model import AccessLinkProfile

BUILTIN_PROFILES: Dict[str, AccessLinkProfile] = {
    profile.name: profile
    for profile in (
        AccessLinkProfile(
            name="geo-satcom-reference",
            rtt_median_ms=750.0,
            rtt_sigma=0.45,
            down_median_mbps=18.0,
            down_sigma=0.6,
            up_median_mbps=3.0,
            up_sigma=0.5,
            loss_pct=0.1,
        ),
        AccessLinkProfile(
            name="starlink",
            rtt_median_ms=45.0,
            rtt_sigma=0.35,
            down_median_mbps=140.0,
            down_sigma=0.45,
            up_median_mbps=12.0,
            up_sigma=0.4,
            loss_pct=0.3,
        ),
        AccessLinkProfile(
            name="4g",
            rtt_median_ms=55.0,
            rtt_sigma=0.40,
            down_median_mbps=32.0,
            down_sigma=0.55,
            up_median_mbps=12.0,
            up_sigma=0.5,
            loss_pct=0.2,
        ),
        AccessLinkProfile(
            name="ftth",
            rtt_median_ms=6.0,
            rtt_sigma=0.20,
            down_median_mbps=300.0,
            down_sigma=0.25,
            up_median_mbps=100.0,
            up_sigma=0.25,
            loss_pct=0.0,
        ),
        AccessLinkProfile(
            name="adsl",
            rtt_median_ms=28.0,
            rtt_sigma=0.25,
            down_median_mbps=12.0,
            down_sigma=0.3,
            up_median_mbps=1.0,
            up_sigma=0.3,
            loss_pct=0.1,
        ),
    )
}
