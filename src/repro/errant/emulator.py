"""Transfer/page-load emulation over an access-link profile.

Mirrors what researchers do with the released ERRANT model: sample
link conditions, estimate object-fetch and page-load times, or emit
``tc netem``-style command lines to configure a real emulator box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errant.model import AccessLinkProfile
from repro.satcom.pagefetch import FetchParameters, fetch_time_with_pep, fetch_time_without_pep


@dataclass
class Emulator:
    """Samples transfers/page loads over one profile."""

    profile: AccessLinkProfile
    seed: int = 0
    pep: bool = True
    """GEO SatCom deployments run a PEP (Section 2.1); terrestrial
    profiles should be emulated with ``pep=False`` semantics — which for
    their low RTTs makes little difference."""

    def __post_init__(self) -> None:
        self.rng = np.random.default_rng(self.seed)

    def sample_conditions(self, n: int = 1) -> Dict[str, np.ndarray]:
        """Draw (rtt_ms, down_mbps, up_mbps) tuples."""
        return {
            "rtt_ms": self.profile.sample_rtt_ms(self.rng, n),
            "down_mbps": self.profile.sample_down_mbps(self.rng, n),
            "up_mbps": self.profile.sample_up_mbps(self.rng, n),
        }

    def emulate_transfer(self, size_bytes: float, n: int = 1, tls: bool = True) -> np.ndarray:
        """Durations (s) of ``n`` independent downloads of ``size_bytes``."""
        conditions = self.sample_conditions(n)
        out = np.empty(n)
        for i in range(n):
            params = FetchParameters(
                size_bytes=size_bytes,
                satellite_rtt_s=conditions["rtt_ms"][i] / 1000.0,
                ground_rtt_s=0.02,
                rate_bps=conditions["down_mbps"][i] * 1e6,
                tls=tls,
            )
            fetch = fetch_time_with_pep if self.pep else fetch_time_without_pep
            out[i] = fetch(params)
        return out

    def emulate_page_load(
        self,
        n_objects: int = 30,
        object_bytes: float = 60_000,
        parallelism: int = 6,
        n: int = 1,
    ) -> np.ndarray:
        """Simple page-load model: objects fetched over ``parallelism``
        connections, each connection paying its own setup."""
        if n_objects <= 0 or parallelism <= 0:
            raise ValueError("n_objects and parallelism must be positive")
        rounds = int(np.ceil(n_objects / parallelism))
        out = np.empty(n)
        for i in range(n):
            total = self.emulate_transfer(object_bytes, n=rounds, tls=True).sum()
            out[i] = total
        return out

    def mean_transfer_time(self, size_bytes: float, n: int = 200) -> float:
        """Convenience: mean download duration."""
        return float(self.emulate_transfer(size_bytes, n).mean())

    def netem_commands(self, interface: str = "eth0") -> List[str]:
        """``tc`` command lines approximating the profile (ERRANT's
        output format: delay ± variation, rate, loss)."""
        rtt = self.profile.rtt_median_ms
        # lognormal sigma → a crude symmetric jitter for netem
        jitter = rtt * (np.exp(self.profile.rtt_sigma) - 1.0)
        return [
            (
                f"tc qdisc add dev {interface} root handle 1: netem "
                f"delay {rtt / 2:.0f}ms {jitter / 2:.0f}ms "
                f"loss {self.profile.loss_pct:.2f}%"
            ),
            (
                f"tc qdisc add dev {interface} parent 1: handle 2: tbf "
                f"rate {self.profile.down_median_mbps:.0f}mbit burst 32kbit latency 400ms"
            ),
        ]


def compare_profiles(
    profiles: Dict[str, AccessLinkProfile],
    size_bytes: float = 1_000_000,
    n: int = 300,
    seed: int = 0,
) -> Dict[str, float]:
    """Mean transfer time per profile — the GEO vs Starlink vs FTTH
    comparison the paper's released model enables."""
    out = {}
    for name, profile in profiles.items():
        pep = name.startswith("geo")
        emulator = Emulator(profile=profile, seed=seed, pep=pep)
        out[name] = emulator.mean_transfer_time(size_bytes, n)
    return out
