"""Data-driven access-link emulation (the paper's ERRANT artifact).

The authors released a GEO SatCom model for their ERRANT network
emulator so researchers can replay the measured link characteristics
and compare them with other technologies (including Starlink, using
data from Michel et al. 2022). We reproduce that artifact: profiles
are fitted from measured flow datasets, ship alongside built-in
comparison profiles, and drive a transfer/page-load emulator that can
also emit ``tc netem``-style command lines.
"""

from repro.errant.model import AccessLinkProfile, fit_profile
from repro.errant.profiles import BUILTIN_PROFILES
from repro.errant.emulator import Emulator

__all__ = ["AccessLinkProfile", "fit_profile", "BUILTIN_PROFILES", "Emulator"]
