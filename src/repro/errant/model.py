"""Access-link profile: fitted log-normal RTT and rate distributions."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.analysis.aggregate import local_hour_of
from repro.analysis.dataset import FlowFrame
from repro.constants import BULK_FLOW_MIN_BYTES


@dataclass(frozen=True)
class AccessLinkProfile:
    """Log-normal link model (the shape ERRANT profiles use).

    ``rtt_median_ms`` / ``rtt_sigma`` parameterize a log-normal RTT;
    the same for download/upload rate. ``loss_pct`` is residual packet
    loss after link-layer recovery.
    """

    name: str
    rtt_median_ms: float
    rtt_sigma: float
    down_median_mbps: float
    down_sigma: float
    up_median_mbps: float
    up_sigma: float
    loss_pct: float = 0.0

    def sample_rtt_ms(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return self.rtt_median_ms * rng.lognormal(0.0, self.rtt_sigma, n)

    def sample_down_mbps(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return self.down_median_mbps * rng.lognormal(0.0, self.down_sigma, n)

    def sample_up_mbps(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return self.up_median_mbps * rng.lognormal(0.0, self.up_sigma, n)

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "AccessLinkProfile":
        return cls(**data)


def _lognormal_fit(values: np.ndarray) -> tuple:
    """(median, sigma) of a log-normal fitted by log-moments."""
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values) & (values > 0)]
    if len(values) < 10:
        raise ValueError("not enough samples to fit a profile")
    logs = np.log(values)
    return float(np.exp(np.median(logs))), float(np.std(logs))


def fit_profile(
    frame: FlowFrame,
    country: str,
    name: Optional[str] = None,
    peak_only: bool = False,
) -> AccessLinkProfile:
    """Fit a GEO SatCom profile from a measured flow dataset.

    RTT comes from the TLS-estimated satellite RTT plus the ground
    RTT of the same flows; rates come from bulk (≥10 MB) flows.
    """
    mask = frame.country_mask(country)
    if peak_only:
        local = local_hour_of(frame)
        mask = mask & (local >= 13.0) & (local < 20.0)

    sat = frame.sat_rtt_ms[mask]
    ground = frame.ground_rtt_ms[mask]
    rtt = sat + np.where(np.isfinite(ground), ground, 0.0)
    rtt_median, rtt_sigma = _lognormal_fit(rtt)

    throughput = frame.download_throughput_bps() / 1e6
    bulk = mask & (frame.bytes_down >= BULK_FLOW_MIN_BYTES) & np.isfinite(throughput)
    down_median, down_sigma = _lognormal_fit(throughput[bulk])

    up_rate = frame.bytes_up * 8.0 / np.maximum(frame.duration_s, 1e-3) / 1e6
    bulk_up = mask & (frame.bytes_up >= BULK_FLOW_MIN_BYTES / 10)
    try:
        up_median, up_sigma = _lognormal_fit(up_rate[bulk_up])
    except ValueError:
        up_median, up_sigma = down_median / 10.0, down_sigma
    up_median = min(up_median, 5.0)  # commercial uplink cap (Section 2.1)

    return AccessLinkProfile(
        name=name or f"geo-satcom-{country.lower().replace(' ', '-')}"
        + ("-peak" if peak_only else ""),
        rtt_median_ms=rtt_median,
        rtt_sigma=rtt_sigma,
        down_median_mbps=down_median,
        down_sigma=down_sigma,
        up_median_mbps=up_median,
        up_sigma=up_sigma,
        loss_pct=0.1,
    )


def save_profiles(
    profiles: Dict[str, AccessLinkProfile], path: Union[str, Path]
) -> None:
    """Write a profile bundle as JSON (the released-artifact format)."""
    data = {name: profile.to_dict() for name, profile in profiles.items()}
    Path(path).write_text(json.dumps(data, indent=2), encoding="utf-8")


def load_profiles(path: Union[str, Path]) -> Dict[str, AccessLinkProfile]:
    """Read a profile bundle written by :func:`save_profiles`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return {name: AccessLinkProfile.from_dict(d) for name, d in data.items()}
