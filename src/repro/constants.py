"""Physical and protocol constants used throughout the reproduction.

Values follow the paper (Section 2.1) and standard references: a GEO
satellite orbits at 35 786 km, packets traverse the satellite link twice
per round trip, and the resulting propagation RTT is 480-560 ms depending
on the subscriber's position on Earth.
"""

SPEED_OF_LIGHT_M_S = 299_792_458.0
"""Speed of light in vacuum (m/s) — satellite links are line of sight."""

FIBER_PROPAGATION_M_S = SPEED_OF_LIGHT_M_S * 2.0 / 3.0
"""Effective propagation speed in optical fiber (refractive index ~1.5)."""

GEO_ALTITUDE_M = 35_786_000.0
"""Altitude of the geostationary orbit above the equator (m)."""

EARTH_RADIUS_M = 6_371_000.0
"""Mean Earth radius (m)."""

GEO_ORBIT_RADIUS_M = EARTH_RADIUS_M + GEO_ALTITUDE_M
"""Distance of a GEO satellite from the Earth's centre (m)."""

TDMA_FRAME_S = 0.045
"""Return-link TDMA frame duration (s). DVB-RCS2 superframes are tens of
milliseconds; 45 ms is a typical operational value."""

ALOHA_SLOT_S = 0.0015
"""Duration of one slotted-Aloha contention slot on the reservation
channel (s)."""

ETHERNET_MTU = 1500
"""Maximum transmission unit assumed on all links (bytes)."""

IPV4_HEADER_LEN = 20
TCP_HEADER_LEN = 20
UDP_HEADER_LEN = 8

BYTES_PER_MB = 1_000_000
BYTES_PER_GB = 1_000_000_000

SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86_400
HOURS_PER_DAY = 24

ACTIVE_CUSTOMER_FLOW_THRESHOLD = 250
"""The paper defines *active customers* as those generating at least 250
flows in a day (Section 4)."""

BULK_FLOW_MIN_BYTES = 10 * BYTES_PER_MB
"""Minimum flow size considered a valid bulk-download throughput sample
(Section 6.5)."""
