"""Deterministic fault injection for the capture pipeline.

The paper's probe ran unattended for three months against 4.3 PB of
traffic; the storage and workers under a real deployment fail. This
module makes those failures *reproducible*: a :class:`FaultPlan` is a
seeded description of what goes wrong — transient IO errors on
write/fsync/rename/read, truncated (torn) writes, worker-process
crashes, and SIGKILL at named checkpoints — and a
:class:`FaultInjector` executes it. Every decision is drawn from the
plan's own RNG (or, for worker crashes, derived as a pure function of
``(seed, window, shard)`` so forked workers agree with the parent), so
the same plan produces the same faults every run. Faults never change
*what* is generated — only whether an IO attempt fails — which is what
lets the chaos tests assert bit-identical rollups.

The production hooks are explicit parameters (``injector=``) on
:class:`~repro.stream.store.FlowStore`,
:func:`~repro.stream.checkpoint.write_checkpoint`,
:meth:`~repro.stream.rollup.StreamRollup.save`,
:class:`~repro.cache.CaptureCache`, and
:func:`~repro.parallel.generate_window_shards` — no monkeypatching.
The disabled singleton :data:`NO_FAULTS` costs one no-op ``try`` per
IO, so the hot path is unchanged when no plan is armed.

The same module owns the resilience the faults exercise:

* :func:`atomic_write_bytes` — the one write-temp → flush → fsync →
  ``os.replace`` helper used by every artifact writer (manifest,
  window npz, rollup state, checkpoint, cache entries);
* :meth:`FaultInjector.run_io` — bounded retry with exponential
  backoff, jittered from the plan RNG, for transient ``OSError``
  (injected or real); non-transient errors (``FileNotFoundError``,
  ``PermissionError``, …) are never retried;
* :class:`FaultStats` — the injected/retried/quarantined counters
  surfaced per window in :mod:`repro.stream.telemetry` and in the
  ``repro stream`` summary line.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field, fields
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

#: Retry policy defaults (a plan can override all three).
DEFAULT_MAX_ATTEMPTS = 4
DEFAULT_BACKOFF_BASE_S = 0.05
DEFAULT_BACKOFF_FACTOR = 2.0

#: ``OSError`` subclasses that are *not* transient: retrying cannot
#: succeed, so :meth:`FaultInjector.run_io` re-raises them immediately.
_NON_TRANSIENT = (
    FileNotFoundError,
    FileExistsError,
    IsADirectoryError,
    NotADirectoryError,
    PermissionError,
)


class InjectedIOError(OSError):
    """A fault-plan-scheduled IO failure (distinguishable from real ones)."""

    def __init__(self, op: str, stage: str) -> None:
        super().__init__(f"injected {stage} failure during {op}")
        self.op = op
        self.stage = stage


@dataclass(frozen=True)
class IoFault:
    """Fail matching IO operations with a transient ``OSError``.

    ``op`` is an ``fnmatch`` pattern over operation names (e.g.
    ``store.*``, ``cache.store``, ``*``); ``stage`` picks where inside
    the operation the error fires (``write``, ``fsync``, ``rename`` for
    writers, ``read`` for readers). When the fault triggers (per-op
    probability ``rate``), the first ``fail_times`` attempts of that
    operation raise; the retry loop then sees the op succeed — or give
    up when ``fail_times`` reaches the plan's ``max_attempts``.
    """

    op: str = "*"
    stage: str = "write"
    rate: float = 1.0
    fail_times: int = 1


@dataclass(frozen=True)
class TruncateFault:
    """Tear a matching write: publish only ``fraction`` of the bytes.

    Models a power cut mid-write on a filesystem without the rename
    barrier. The torn artifact *is* published (the whole point), so the
    reader-side quarantine/regenerate path has something to find.
    """

    op: str = "*"
    rate: float = 1.0
    fraction: float = 0.5


@dataclass(frozen=True)
class WorkerCrash:
    """Kill a forked generation worker (``os._exit``) before it returns.

    ``window``/``shard`` of ``-1`` match any. The decision is a pure
    function of ``(plan seed, window, shard)`` — forked children and
    the parent compute the same answer without shared state.
    """

    window: int = -1
    shard: int = -1
    rate: float = 1.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of everything that goes wrong."""

    seed: int = 0
    io_faults: Tuple[IoFault, ...] = ()
    truncate_faults: Tuple[TruncateFault, ...] = ()
    worker_crashes: Tuple[WorkerCrash, ...] = ()
    kill_at: Tuple[str, ...] = ()
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S
    backoff_factor: float = DEFAULT_BACKOFF_FACTOR


@dataclass
class FaultStats:
    """Counters of what the injector did (and what survived it)."""

    injected: int = 0
    """Transient IO errors raised by the plan."""
    retries: int = 0
    """IO attempts re-run after a transient error (injected or real)."""
    gave_up: int = 0
    """Operations that still failed after ``max_attempts``."""
    truncated: int = 0
    """Writes torn by a :class:`TruncateFault`."""
    worker_crashes: int = 0
    """Forked worker pools lost to a crash (parent fell back in-process)."""
    quarantined: int = 0
    """Corrupt cache entries renamed aside instead of served."""
    rollup_rebuilds: int = 0
    """Resumes that re-folded the rollup from committed windows."""

    def copy(self) -> "FaultStats":
        return FaultStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, since: "FaultStats") -> "FaultStats":
        return FaultStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )

    @property
    def faults(self) -> int:
        """Total fault events (the telemetry "Faults" column)."""
        return self.injected + self.truncated + self.worker_crashes

    def summary(self) -> str:
        """The one-line counter summary printed by ``repro stream``."""
        return (
            f"faults: {self.injected} io injected, {self.retries} retries, "
            f"{self.truncated} truncated, {self.worker_crashes} worker "
            f"crashes, {self.quarantined} quarantined, "
            f"{self.rollup_rebuilds} rollup rebuilds"
        )


class _Ticket:
    """One IO operation's fault budget (decided once, spent per attempt).

    The budget is drawn when the operation starts, *not* per attempt —
    so ``fail_times=2`` means exactly two failing attempts and then
    success, which is what makes retry behaviour decidable from the
    plan instead of racing the retry loop.
    """

    __slots__ = ("_stats", "op", "_budget", "_truncate")

    def __init__(self, injector: "FaultInjector", op: str) -> None:
        self._stats = injector.stats
        self.op = op
        self._budget: Dict[str, int] = {}
        self._truncate: Optional[float] = None
        plan = injector.plan
        if plan is None:
            return
        rng = injector.rng
        for fault in plan.io_faults:
            if fnmatch(op, fault.op) and (
                fault.rate >= 1.0 or rng.random() < fault.rate
            ):
                self._budget[fault.stage] = max(
                    self._budget.get(fault.stage, 0), fault.fail_times
                )
        for fault in plan.truncate_faults:
            if fnmatch(op, fault.op) and (
                fault.rate >= 1.0 or rng.random() < fault.rate
            ):
                self._truncate = fault.fraction

    def check(self, stage: str) -> None:
        """Raise if the plan scheduled a failure for this stage."""
        remaining = self._budget.get(stage, 0)
        if remaining > 0:
            self._budget[stage] = remaining - 1
            self._stats.injected += 1
            raise InjectedIOError(self.op, stage)

    def mangle(self, tmp_path: str) -> None:
        """Tear the not-yet-published temp file if the plan says so."""
        if self._truncate is None:
            return
        size = os.path.getsize(tmp_path)
        os.truncate(tmp_path, max(0, int(size * self._truncate)))
        self._stats.truncated += 1
        self._truncate = None  # one torn publish per operation


class _NullTicket:
    """The zero-overhead ticket used when no plan is armed."""

    __slots__ = ()
    op = "disabled"

    def check(self, stage: str) -> None:
        pass

    def mangle(self, tmp_path: str) -> None:
        pass


_NULL_TICKET = _NullTicket()


class FaultInjector:
    """Executes a :class:`FaultPlan` and owns the retry/backoff loop.

    With ``plan=None`` the injector is *disabled*: no faults fire, no
    RNG is consumed, and :meth:`run_io` only adds a ``try/except`` —
    but real transient ``OSError`` still gets the bounded backoff, so
    production runs inherit the resilience for free.
    """

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed if plan is not None else 0)
        self.stats = FaultStats()
        self._sleep = sleep
        self.max_attempts = (
            plan.max_attempts if plan is not None else DEFAULT_MAX_ATTEMPTS
        )
        self.backoff_base_s = (
            plan.backoff_base_s if plan is not None else DEFAULT_BACKOFF_BASE_S
        )
        self.backoff_factor = (
            plan.backoff_factor if plan is not None else DEFAULT_BACKOFF_FACTOR
        )

    @property
    def enabled(self) -> bool:
        return self.plan is not None

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), jittered ±50%."""
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return base * (0.5 + self.rng.random())

    def run_io(self, op: str, attempt_fn: Callable[..., object]):
        """Run ``attempt_fn(ticket)`` with bounded, backed-off retries.

        The ticket carries the plan's failure budget for this single
        operation; ``attempt_fn`` calls ``ticket.check(stage)`` at its
        failure points and ``ticket.mangle(tmp)`` before publishing.
        Transient ``OSError`` (injected or real) is retried up to the
        plan's ``max_attempts``; non-transient errors and everything
        else propagate immediately.
        """
        ticket = _Ticket(self, op) if self.plan is not None else _NULL_TICKET
        attempt = 1
        while True:
            try:
                return attempt_fn(ticket)
            except _NON_TRANSIENT:
                raise
            except OSError:
                if attempt >= self.max_attempts:
                    self.stats.gave_up += 1
                    raise
                self.stats.retries += 1
                self._sleep(self.backoff_delay(attempt))
                attempt += 1

    def kill_point(self, name: str) -> None:
        """SIGKILL this process if the plan names this checkpoint.

        A real ``SIGKILL`` — no cleanup handlers, no flushing — which
        is exactly the failure checkpoint/resume must survive.
        """
        if self.plan is not None and name in self.plan.kill_at:
            os.kill(os.getpid(), signal.SIGKILL)

    def crash_worker(self, window_index: int, shard_index: int) -> bool:
        """Should the worker for this (window, shard) cell die?

        Pure function of the plan — forked children answer identically
        to the parent without any shared mutable state.
        """
        if self.plan is None:
            return False
        for spec in self.plan.worker_crashes:
            if spec.window not in (-1, window_index):
                continue
            if spec.shard not in (-1, shard_index):
                continue
            if spec.rate >= 1.0:
                return True
            draw = np.random.default_rng(
                np.random.SeedSequence(
                    [self.plan.seed, 0x57C, window_index, shard_index]
                )
            ).random()
            if draw < spec.rate:
                return True
        return False


#: The disabled injector every hook defaults to. Shared on purpose:
#: it holds no plan, consumes no RNG, and its stats only move when a
#: *real* transient IO error is retried.
NO_FAULTS = FaultInjector(None)


def resolve_injector(
    faults: Union[None, FaultPlan, FaultInjector]
) -> FaultInjector:
    """Normalize a ``faults=`` argument (plan, injector, or ``None``)."""
    if faults is None:
        return NO_FAULTS
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(faults)


def atomic_write_bytes(
    path: Union[str, Path],
    write_fn: Callable,
    injector: Optional[FaultInjector] = None,
    op: str = "io.write",
) -> int:
    """Write via ``write_fn(handle)`` to a temp file, fsync, publish.

    The single durable-write primitive of the repo: every manifest,
    window, rollup state, checkpoint, and cache entry goes through it.
    The temp file lives in the target directory (same filesystem, so
    ``os.replace`` is atomic), is flushed and fsynced before the
    rename (a kill after publish can't leave a hollow inode), and the
    directory entry is fsynced best-effort after. Returns the
    published size in bytes. Retries and fault hooks come from
    ``injector`` (disabled by default).
    """
    import tempfile

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    inj = injector if injector is not None else NO_FAULTS

    def _attempt(ticket) -> int:
        ticket.check("write")
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                write_fn(handle)
                handle.flush()
                ticket.check("fsync")
                os.fsync(handle.fileno())
            ticket.mangle(tmp_name)
            size = os.path.getsize(tmp_name)
            ticket.check("rename")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        try:  # directory entry durability is best-effort
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        return size

    return inj.run_io(op, _attempt)


#: Named chaos profiles reachable from the CLI via
#: ``--set faults.profile=...``. Rates are per *operation*; with the
#: default plan seed a 3-window stream run injects several transient
#: errors, every one of which must be absorbed by the retry loop.
FAULT_PROFILES: Dict[str, FaultPlan] = {
    "flaky-disk": FaultPlan(
        io_faults=(
            IoFault(op="*", stage="write", rate=0.35, fail_times=1),
            IoFault(op="*", stage="fsync", rate=0.15, fail_times=1),
            IoFault(op="*", stage="rename", rate=0.10, fail_times=1),
            IoFault(op="cache.*", stage="read", rate=0.25, fail_times=1),
        ),
        truncate_faults=(TruncateFault(op="cache.store", rate=0.5),),
    ),
    "dying-workers": FaultPlan(
        worker_crashes=(WorkerCrash(rate=0.5),),
    ),
}
