"""The live analytics HTTP service (stdlib asyncio, no frameworks).

A minimal HTTP/1.1 GET server on :func:`asyncio.start_server` — the
operator's monitoring deck for a running capture. Every response is
rendered from the :class:`~repro.serve.snapshot.SnapshotHub`'s current
:class:`~repro.serve.snapshot.RollupSnapshot` and tagged with that
snapshot's committed digest and progress (``X-Capture-Digest`` /
``X-Capture-Progress`` headers, and the same fields in JSON
envelopes), so a client can always tell *which* committed window
prefix it is looking at.

Endpoints (GET/HEAD only):

* ``/reports``                — JSON list of servable report names
* ``/reports/<name>``        — one registry report; markdown by
  default, ``?format=json`` for an envelope with the digest fields
* ``/progress``              — windows committed / total, digest
* ``/telemetry``             — per-window producer counters plus the
  server's own per-endpoint latency/QPS counters
* ``/scorecard``             — paper-vs-measured calibration scorecard
* ``/capabilities``          — the report × source capability matrix

Rendering a report is CPU-bound numpy under the GIL, so the handler
applies backpressure with a semaphore: at most ``max_inflight``
requests render concurrently, the rest queue in the event loop (and
ultimately in the listen backlog) instead of stampeding the process.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

import numpy as np

from repro.analysis import registry
from repro.analysis.aggregate import format_table
from repro.analysis.source import CaptureError, RollupSource
from repro.analysis.validation import build_scorecard_rollup
from repro.serve.snapshot import RollupSnapshot, SnapshotHub

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 64


@dataclass
class EndpointStats:
    """Latency/QPS counters for one endpoint (``/telemetry`` fodder)."""

    endpoint: str
    requests: int = 0
    errors: int = 0
    _latencies_ms: List[float] = field(default_factory=list, repr=False)

    #: Retain at most this many samples per endpoint; enough for
    #: stable p99 under the 500-client load test without unbounded
    #: growth on a long-lived server.
    MAX_SAMPLES = 100_000

    def observe(self, latency_s: float, error: bool) -> None:
        self.requests += 1
        if error:
            self.errors += 1
        if len(self._latencies_ms) < self.MAX_SAMPLES:
            self._latencies_ms.append(latency_s * 1000.0)

    def percentile_ms(self, q: float) -> float:
        if not self._latencies_ms:
            return float("nan")
        return float(np.percentile(self._latencies_ms, q))


class ServeStats:
    """Thread-safe per-endpoint counter table for one server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.endpoints: Dict[str, EndpointStats] = {}

    def observe(self, endpoint: str, latency_s: float, error: bool) -> None:
        with self._lock:
            stats = self.endpoints.setdefault(endpoint, EndpointStats(endpoint))
            stats.observe(latency_s, error)

    @property
    def requests_total(self) -> int:
        with self._lock:
            return sum(s.requests for s in self.endpoints.values())

    @property
    def errors_total(self) -> int:
        with self._lock:
            return sum(s.errors for s in self.endpoints.values())

    def qps(self) -> float:
        elapsed = time.monotonic() - self._started
        return self.requests_total / elapsed if elapsed > 0 else 0.0

    def rows(self) -> List[dict]:
        with self._lock:
            elapsed = time.monotonic() - self._started
            return [
                {
                    "endpoint": s.endpoint,
                    "requests": s.requests,
                    "errors": s.errors,
                    "p50_ms": s.percentile_ms(50),
                    "p99_ms": s.percentile_ms(99),
                    "qps": s.requests / elapsed if elapsed > 0 else 0.0,
                }
                for s in sorted(self.endpoints.values(), key=lambda s: s.endpoint)
            ]


def render_serve_telemetry(stats: ServeStats) -> str:
    """The per-endpoint latency/QPS table, in the house table style."""
    rows = [
        (
            row["endpoint"],
            f"{row['requests']:,}",
            f"{row['errors']:,}",
            f"{row['p50_ms']:.2f}",
            f"{row['p99_ms']:.2f}",
            f"{row['qps']:.1f}",
        )
        for row in stats.rows()
    ]
    table = format_table(
        ["Endpoint", "Requests", "Errors", "p50 ms", "p99 ms", "QPS"],
        rows,
        title="Serve telemetry (per endpoint)",
    )
    return table + (
        f"\n{stats.requests_total:,} requests, "
        f"{stats.errors_total:,} errors, {stats.qps():.1f} QPS overall"
    )


def _servable_reports() -> List[registry.ReportSpec]:
    return [spec for spec in registry.specs() if spec.compute_rollup is not None]


class ReportServer:
    """The asyncio HTTP endpoint over a :class:`SnapshotHub`."""

    def __init__(
        self,
        hub: SnapshotHub,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        stats: Optional[ServeStats] = None,
    ) -> None:
        self.hub = hub
        self.host = host
        self.port = port
        self.stats = stats if stats is not None else ServeStats()
        self._max_inflight = max(1, int(max_inflight))
        self._gate: Optional[asyncio.Semaphore] = None
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        # The semaphore must be created on the serving loop.
        self._gate = asyncio.Semaphore(self._max_inflight)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request plumbing ---------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if not request:
                return
            if len(request) > _MAX_REQUEST_LINE:
                await self._respond(writer, "HEAD", 431, "text/plain", b"", {})
                return
            for _ in range(_MAX_HEADER_LINES):
                line = await asyncio.wait_for(reader.readline(), timeout=30.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request.decode("latin-1").split()
            if len(parts) != 3:
                await self._respond(writer, "GET", 400, "text/plain",
                                    b"bad request line\n", {})
                return
            method, target, _version = parts
            started = time.perf_counter()
            try:
                async with self._gate:
                    status, ctype, body, extra, endpoint = self._dispatch(
                        method, target
                    )
            except Exception as exc:  # never drop the connection silently
                status, ctype, endpoint = 500, "text/plain", "_error"
                body, extra = f"internal error: {exc}\n".encode(), {}
            self.stats.observe(
                endpoint, time.perf_counter() - started, error=status >= 400
            )
            await self._respond(writer, method, status, ctype, body, extra)
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        method: str,
        status: int,
        ctype: str,
        body: bytes,
        extra: Dict[str, str],
    ) -> None:
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 422: "Unprocessable Entity",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
        }.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}; charset=utf-8",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head += [f"{k}: {v}" for k, v in extra.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        if method != "HEAD":
            writer.write(body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    def _dispatch(
        self, method: str, target: str
    ) -> Tuple[int, str, bytes, Dict[str, str], str]:
        """Route one request; returns (status, ctype, body, headers,
        endpoint-key). Pure and synchronous — runs under the inflight
        gate on the event loop, which serializes numpy renders."""
        split = urlsplit(target)
        path = unquote(split.path).rstrip("/") or "/"
        params = parse_qs(split.query)
        fmt = params.get("format", ["markdown"])[0]

        if method not in ("GET", "HEAD"):
            return 405, "text/plain", b"GET and HEAD only\n", {}, "_method"

        snapshot = self.hub.current()
        if snapshot is None:
            return (
                503, "text/plain",
                b"no snapshot published yet (capture warming up)\n",
                {"Retry-After": "1"}, "_warmup",
            )
        extra = {
            "X-Capture-Digest": snapshot.digest,
            "X-Capture-Progress": f"{snapshot.progress:.6f}",
            "X-Capture-Windows": f"{snapshot.windows_done}/{snapshot.n_windows}",
        }

        try:
            if path == "/progress":
                return (*self._progress(snapshot), extra, "progress")
            if path == "/telemetry":
                return (*self._telemetry(snapshot, fmt), extra, "telemetry")
            if path == "/scorecard":
                return (*self._scorecard(snapshot, fmt), extra, "scorecard")
            if path == "/capabilities":
                return (*self._capabilities(fmt), extra, "capabilities")
            if path == "/reports":
                body = _json_bytes(
                    {"reports": [s.name for s in _servable_reports()]}
                )
                return 200, "application/json", body, extra, "reports"
            if path.startswith("/reports/"):
                name = path[len("/reports/"):]
                return (*self._report(snapshot, name, fmt), extra,
                        f"reports/{name}")
        except registry.ReportSourceError as exc:
            return 422, "text/plain", f"{exc}\n".encode(), extra, path.lstrip("/")
        except CaptureError as exc:
            return 400, "text/plain", f"{exc}\n".encode(), extra, path.lstrip("/")
        except (ValueError, KeyError, IndexError) as exc:
            # A sparse early snapshot can defeat a report's statistics
            # (e.g. a country with zero RTT samples so far). That is a
            # property of *this* prefix, not a server fault: 422, and
            # the client retries after more windows commit.
            body = (
                f"report not computable from this snapshot yet "
                f"({snapshot.windows_done}/{snapshot.n_windows} windows): "
                f"{exc}\n"
            ).encode()
            return 422, "text/plain", body, extra, path.lstrip("/")

        known = ("/reports", "/reports/<name>", "/progress", "/telemetry",
                 "/scorecard", "/capabilities")
        body = f"unknown path {path}; endpoints: {', '.join(known)}\n".encode()
        return 404, "text/plain", body, extra, "_unknown"

    # -- endpoint bodies ----------------------------------------------

    @staticmethod
    def _progress(snapshot: RollupSnapshot) -> Tuple[int, str, bytes]:
        payload = {
            "capture_key": snapshot.capture_key,
            "digest": snapshot.digest,
            "windows_done": snapshot.windows_done,
            "n_windows": snapshot.n_windows,
            "progress": snapshot.progress,
            "complete": snapshot.complete,
            "flows_total": snapshot.rollup.flows_total,
        }
        return 200, "application/json", _json_bytes(payload)

    def _telemetry(
        self, snapshot: RollupSnapshot, fmt: str
    ) -> Tuple[int, str, bytes]:
        if fmt == "markdown":
            from repro.stream.telemetry import render_telemetry

            parts = []
            if snapshot.telemetry:
                parts.append(render_telemetry(list(snapshot.telemetry)))
            parts.append(render_serve_telemetry(self.stats))
            return 200, "text/markdown", ("\n\n".join(parts) + "\n").encode()
        payload = {
            "windows": [asdict(row) for row in snapshot.telemetry],
            "endpoints": self.stats.rows(),
            "requests_total": self.stats.requests_total,
            "errors_total": self.stats.errors_total,
            "qps": self.stats.qps(),
        }
        return 200, "application/json", _json_bytes(payload)

    @staticmethod
    def _scorecard(snapshot: RollupSnapshot, fmt: str) -> Tuple[int, str, bytes]:
        scorecard = build_scorecard_rollup(snapshot.rollup)
        if fmt == "json":
            payload = {
                "digest": snapshot.digest,
                "progress": snapshot.progress,
                "passed": scorecard.passed,
                "total": scorecard.total,
                "markdown": scorecard.render(),
            }
            return 200, "application/json", _json_bytes(payload)
        return 200, "text/markdown", (scorecard.render() + "\n").encode()

    @staticmethod
    def _capabilities(fmt: str) -> Tuple[int, str, bytes]:
        if fmt == "json":
            payload = {
                "reports": [
                    {
                        "name": spec.name,
                        "title": spec.title,
                        "sources": list(spec.sources),
                        "servable": spec.compute_rollup is not None,
                    }
                    for spec in registry.specs()
                ]
            }
            return 200, "application/json", _json_bytes(payload)
        return 200, "text/markdown", (
            registry.capability_matrix_markdown() + "\n"
        ).encode()

    @staticmethod
    def _report(
        snapshot: RollupSnapshot, name: str, fmt: str
    ) -> Tuple[int, str, bytes]:
        try:
            registry.get(name)
        except KeyError:
            servable = ", ".join(s.name for s in _servable_reports())
            body = f"unknown report {name!r}; servable: {servable}\n".encode()
            return 404, "text/plain", body
        # The exact offline path: registry dispatch from a RollupSource
        # with prefer="rollup" — what `repro stream-report` runs.
        rendered = registry.run(
            name, RollupSource(snapshot.rollup), prefer="rollup"
        )
        if fmt == "json":
            payload = {
                "report": name,
                "title": registry.get(name).title,
                "capture_key": snapshot.capture_key,
                "digest": snapshot.digest,
                "progress": snapshot.progress,
                "windows_done": snapshot.windows_done,
                "n_windows": snapshot.n_windows,
                "markdown": rendered,
            }
            return 200, "application/json", _json_bytes(payload)
        return 200, "text/markdown", (rendered + "\n").encode()


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode()


class ServerThread:
    """A :class:`ReportServer` on its own event loop in a daemon thread.

    The producer owns the main thread (and its commit thread); the
    server rides alongside, reading published snapshots. ``start()``
    blocks until the socket is bound (so ``.port`` is real even for
    ephemeral port 0) and re-raises any bind error in the caller.
    """

    def __init__(
        self,
        hub: SnapshotHub,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
    ) -> None:
        self.server = ReportServer(hub, host=host, port=port,
                                   max_inflight=max_inflight)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def stats(self) -> ServeStats:
        return self.server.stats

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to bind: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()
            self._loop.close()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.close())
            self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._thread is not None:
            if self._thread.is_alive():
                self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
