"""repro.serve — query a live capture over HTTP while it runs.

The paper's operator vantage is a monitoring deck over live traffic;
this package is the reproduction's read path for it: the producer
publishes checkpoint-consistent rollup snapshots into a
:class:`SnapshotHub` as windows commit, and a stdlib-asyncio HTTP
server renders registry reports, progress, telemetry, the scorecard
and the capability matrix from whichever snapshot is current — every
response tagged with the committed rollup digest it was computed from.
"""

from repro.serve.service import (
    EndpointStats,
    ReportServer,
    ServeStats,
    ServerThread,
    render_serve_telemetry,
)
from repro.serve.snapshot import (
    RollupSnapshot,
    SnapshotHub,
    snapshot_from_capture,
)

__all__ = [
    "EndpointStats",
    "ReportServer",
    "RollupSnapshot",
    "ServeStats",
    "ServerThread",
    "SnapshotHub",
    "render_serve_telemetry",
    "snapshot_from_capture",
]
