"""Checkpoint-consistent rollup snapshots for the live analytics service.

The serve layer never reads the producer's live :class:`StreamRollup`
— that object mutates mid-fold on the commit thread. Instead the
producer *publishes* an immutable :class:`RollupSnapshot` into a
:class:`SnapshotHub` right after each window's checkpoint lands:
``StreamRollup.copy()`` (copy-on-publish, digest-identical by
construction) tagged with the committed ``rollup_digest`` and
``Checkpoint.progress()``. Readers always see either the previous
snapshot or the new one, never a half-folded window — swapping one
reference under a lock is the whole consistency protocol.

:func:`snapshot_from_capture` builds the same snapshot from a capture
directory on disk (finished or mid-flight), which is what
``repro serve --dir`` uses to watch a capture produced by another
process.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.analysis.source import CaptureError
from repro.stream.checkpoint import (
    Checkpoint,
    WindowTelemetry,
    load_checkpoint,
    rollup_path,
)
from repro.stream.rollup import StreamRollup


@dataclass(frozen=True)
class RollupSnapshot:
    """One immutable committed-prefix view of a capture.

    ``rollup`` is a private copy — nothing mutates it after publish —
    and ``digest`` is the checkpoint's committed ``rollup_digest``, so
    an HTTP response tagged with it names exactly which window prefix
    it rendered.
    """

    rollup: StreamRollup
    digest: str
    capture_key: str
    windows_done: int
    n_windows: int
    telemetry: Tuple[WindowTelemetry, ...] = ()

    @property
    def progress(self) -> float:
        if self.n_windows <= 0:
            return 1.0
        return min(1.0, self.windows_done / self.n_windows)

    @property
    def complete(self) -> bool:
        return self.windows_done >= self.n_windows

    @classmethod
    def from_state(
        cls,
        rollup: StreamRollup,
        checkpoint: Checkpoint,
    ) -> "RollupSnapshot":
        """Copy-on-publish: snapshot the live rollup at a commit point.

        Must be called on the commit thread *between* windows (the
        producer does, from the same spot that fires ``on_window``), so
        the copy sees whole folded windows only.
        """
        return cls(
            rollup=rollup.copy(),
            digest=checkpoint.rollup_digest,
            capture_key=checkpoint.capture_key,
            windows_done=checkpoint.windows_done,
            n_windows=checkpoint.n_windows,
            telemetry=tuple(checkpoint.telemetry),
        )


@dataclass
class SnapshotHub:
    """Thread-safe single-slot exchange between producer and server.

    The producer publishes, any number of server threads read. The hub
    keeps only the latest snapshot (dashboards want "now", not
    history) plus a publish counter for the telemetry table.
    """

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _first: threading.Event = field(default_factory=threading.Event, repr=False)
    _current: Optional[RollupSnapshot] = None
    published: int = 0

    def publish(self, snapshot: RollupSnapshot) -> None:
        with self._lock:
            self._current = snapshot
            self.published += 1
        self._first.set()

    def publish_state(self, rollup: StreamRollup, checkpoint: Checkpoint) -> None:
        """Copy-on-publish from live producer state (see ``from_state``)."""
        self.publish(RollupSnapshot.from_state(rollup, checkpoint))

    def current(self) -> Optional[RollupSnapshot]:
        with self._lock:
            return self._current

    def wait(self, timeout: Optional[float] = None) -> Optional[RollupSnapshot]:
        """Block until the first snapshot is published, then return it."""
        self._first.wait(timeout)
        return self.current()


def snapshot_from_capture(path: Union[str, Path]) -> RollupSnapshot:
    """Snapshot a capture directory (or saved rollup ``.npz``) on disk.

    For a capture directory the committed checkpoint is authoritative:
    if ``rollup.npz`` ran ahead of ``checkpoint.json`` (a kill between
    commit steps 2 and 3) the digests disagree and we refuse with a
    diagnosis instead of serving an uncommitted window — ``repro
    stream --resume`` heals that state, serving must not paper over it.
    """
    path = Path(path)
    if path.is_file():
        rollup = StreamRollup.load(path)
        return RollupSnapshot(
            rollup=rollup,
            digest=rollup.state_digest(),
            capture_key="",
            windows_done=rollup.windows_folded,
            n_windows=rollup.windows_folded,
        )
    if not path.is_dir():
        raise CaptureError(f"no capture at {path}")
    checkpoint = load_checkpoint(path)
    if checkpoint is None:
        raise CaptureError(
            f"{path} has no checkpoint.json — nothing committed to serve yet"
        )
    if checkpoint.windows_done <= 0:
        raise CaptureError(
            f"capture in progress (0% complete): {path} has no committed windows yet"
        )
    rollup = StreamRollup.load(rollup_path(path))
    digest = rollup.state_digest()
    if digest != checkpoint.rollup_digest:
        raise CaptureError(
            f"rollup state at {path} is ahead of its checkpoint "
            f"(digest {digest[:12]} != committed {checkpoint.rollup_digest[:12]}); "
            "resume the capture (repro stream --resume) to heal it"
        )
    return RollupSnapshot(
        rollup=rollup,
        digest=digest,
        capture_key=checkpoint.capture_key,
        windows_done=checkpoint.windows_done,
        n_windows=checkpoint.n_windows,
        telemetry=tuple(checkpoint.telemetry),
    )
