"""Reproduction of "When Satellite is All You Have: Watching the Internet
from 550 ms" (IMC 2022).

The package is organized in layers:

* :mod:`repro.simnet` — discrete-event simulation engine.
* :mod:`repro.net` — packet primitives and addressing.
* :mod:`repro.protocols` — wire-format encoders/decoders (TLS, DNS, HTTP,
  QUIC, RTP) used both by the packet-level simulator and the DPI module.
* :mod:`repro.satcom` — the GEO SatCom access network: geometry, MAC,
  channel impairments, PEP, beams, shapers, ground station.
* :mod:`repro.internet` — the terrestrial side: geography, latency model,
  CDNs, DNS resolvers.
* :mod:`repro.flowmeter` — the Tstat-like passive monitor deployed at the
  ground station.
* :mod:`repro.traffic` — synthetic subscriber populations and workloads.
* :mod:`repro.analysis` — the analytics that regenerate every table and
  figure of the paper.
* :mod:`repro.errant` — the data-driven access-link model (ERRANT).
* :mod:`repro.pipeline` — end-to-end orchestration.
"""

from repro.version import __version__

__all__ = ["__version__"]
