"""One declarative scenario tree for every operator knob.

The paper's analyses are all conditioned on operator configuration —
beam capacities, TDMA framing, PEP saturation, QoS shaping, the plan
mix (Sections 2.1–2.2, Figures 8/11). This module gathers those knobs,
previously scattered as dataclass defaults across ``satcom/*`` and four
unrelated config objects (``WorkloadConfig``, ``StreamConfig``,
``PacketSimConfig``, ``QosScenarioConfig``), into a single typed
:class:`Scenario` tree:

``geometry``   orbital regime (GEO slot or a LEO shell)
``constellation`` time-varying delay engine — orbital shells, the
               ~15 s reconfiguration epoch and the handover spike
               (content only when switched out of ``static`` mode)
``beams``      load scaling and beam outages on the default beam plan
``mac``        TDMA/Aloha framing and the stack-processing delays
``channel``    FEC residual error / ARQ recovery knobs
``pep``        PEP setup/forwarding saturation knobs
``qos``        the QoS micro-simulation's offered load and shaping
``plans``      commercial plan mix per continent (Section 6.5)
``population`` who subscribes (count, countries)
``workload``   what they do (days, seed, flow scaling, DNS rate)
``traffic``    the session-structured traffic model — per-category mix
               weights, per-service distribution overrides
               (``lognormal(...)`` spec strings) and the video-QoE
               session knobs (content only when moved off defaults)
``stream``     windowing of streaming captures (content)
``execution``  workers / spill compression (never content)
``fleet``      distributed capture partitioning — partitions,
               parallelism, straggler policy (never content; see
               :mod:`repro.fleet`)
``faults``     seeded chaos plan — injected IO errors, worker
               crashes, kill-points (never content; see
               :mod:`repro.faults`)

A scenario can be loaded from TOML or JSON (sparse: unspecified fields
keep the baseline defaults), overridden with dotted ``--set`` paths
(override precedence beats file values), and is validated field by
field with **path-qualified** :class:`ScenarioError` messages
(``beams.utilization_scale: must be > 0``).

:meth:`Scenario.digest` is *the* cache identity of the capture the
scenario generates. When every model section sits at the baseline
defaults the digest deliberately equals the legacy
:func:`repro.cache.config_cache_key` of the mapped ``WorkloadConfig``,
so warm caches (and half-written stream checkpoints) survive the
refactor; any model deviation switches to a full-tree digest. The
``qos`` section never contributes — the QoS micro-sim is self-contained
and does not shape the capture. ``execution`` never contributes either.

Named scenarios live in a registry (:func:`get_scenario`,
:func:`scenario_names`): ``baseline-geo`` (bit-identical to the
pre-scenario defaults), ``congested-beam``, ``beam-outage``, ``leo``,
``heavy-growth``, ``leo-starlink`` (orbital motion + handovers) and
``multi-orbit`` (two shells).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

from repro.constants import ALOHA_SLOT_S, TDMA_FRAME_S
from repro.internet.geo import COUNTRIES, SATELLITE_LONGITUDE_DEG
from repro.satcom.beams import Beam, BeamMap, build_default_beam_map
from repro.satcom.channel import ChannelModel
from repro.satcom.constellation import ConstellationModel
from repro.satcom.geometry import SatelliteGeometry
from repro.satcom.leo import LeoGeometryAdapter, LeoShell
from repro.satcom.mac import SlottedAlohaModel, TdmaModel
from repro.satcom.pep import PepCapacityModel
from repro.satcom.plans import PLAN_MIX_BY_CONTINENT, PLANS
from repro.satcom.qos_sim import QosScenarioConfig
from repro.traffic.distributions import DistributionError, parse_spec
from repro.traffic.services import SERVICES, ServiceCategory
from repro.traffic.workload import TrafficModel, WorkloadConfig

#: Bump together with schema changes that alter what a digest covers.
SCENARIO_SALT = "repro-scenario-v1"


class ScenarioError(ValueError):
    """Invalid scenario content, qualified by the offending field path."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


# --------------------------------------------------------------------------
# Sections
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GeometrySpec:
    """Orbital regime: the monitored GEO bird, or a LEO shell."""

    orbit: str = "geo"
    satellite_longitude_deg: float = SATELLITE_LONGITUDE_DEG
    leo_altitude_km: float = 550.0
    leo_min_elevation_deg: float = 25.0
    leo_typical_elevation_deg: float = 50.0

    def _validate(self, path: str) -> None:
        if self.orbit not in ("geo", "leo"):
            raise ScenarioError(f"{path}.orbit", "must be 'geo' or 'leo'")
        if not -180.0 <= self.satellite_longitude_deg <= 180.0:
            raise ScenarioError(
                f"{path}.satellite_longitude_deg", "must be in [-180, 180]"
            )
        if not 200.0 <= self.leo_altitude_km <= 2000.0:
            raise ScenarioError(f"{path}.leo_altitude_km", "must be in [200, 2000]")
        if not 5.0 <= self.leo_min_elevation_deg < 90.0:
            raise ScenarioError(
                f"{path}.leo_min_elevation_deg", "must be in [5, 90)"
            )
        if not self.leo_min_elevation_deg <= self.leo_typical_elevation_deg <= 90.0:
            raise ScenarioError(
                f"{path}.leo_typical_elevation_deg",
                "must be in [leo_min_elevation_deg, 90]",
            )


@dataclass(frozen=True)
class ConstellationSpec:
    """The time-varying constellation delay engine (DESIGN §14).

    ``mode="static"`` (the default) keeps the pre-refactor behavior —
    the capture's RTT distribution is fixed for the whole run and the
    section contributes nothing to the digest, so every existing
    scenario keeps its cache identity. ``mode="orbital"`` activates a
    :class:`~repro.satcom.constellation.ConstellationModel` built from
    these shells: the RTT floor then moves per ~15 s scheduling epoch
    and flows starting inside the post-handover window pay the spike.
    """

    mode: str = "static"
    altitudes_km: Tuple[float, ...] = (550.0,)
    satellites_per_shell: Tuple[int, ...] = (1584,)
    min_elevation_deg: float = 25.0
    bent_pipe: bool = True
    reconfiguration_s: float = 15.0
    handover_window_s: float = 1.0
    handover_penalty_ms: float = 8.0

    def _validate(self, path: str) -> None:
        if self.mode not in ("static", "orbital"):
            raise ScenarioError(f"{path}.mode", "must be 'static' or 'orbital'")
        if not self.altitudes_km:
            raise ScenarioError(f"{path}.altitudes_km", "must not be empty")
        for altitude in self.altitudes_km:
            if not 200.0 <= altitude <= 2000.0:
                raise ScenarioError(
                    f"{path}.altitudes_km", "every shell must be in [200, 2000]"
                )
        if len(self.satellites_per_shell) != len(self.altitudes_km):
            raise ScenarioError(
                f"{path}.satellites_per_shell",
                "must have one entry per shell in altitudes_km",
            )
        for count in self.satellites_per_shell:
            if count < 1:
                raise ScenarioError(
                    f"{path}.satellites_per_shell", "every shell needs >= 1 satellite"
                )
        if not 5.0 <= self.min_elevation_deg < 90.0:
            raise ScenarioError(f"{path}.min_elevation_deg", "must be in [5, 90)")
        if self.reconfiguration_s <= 0.0:
            raise ScenarioError(f"{path}.reconfiguration_s", "must be > 0")
        if not 0.0 <= self.handover_window_s <= self.reconfiguration_s:
            raise ScenarioError(
                f"{path}.handover_window_s", "must be in [0, reconfiguration_s]"
            )
        if self.handover_penalty_ms < 0.0:
            raise ScenarioError(f"{path}.handover_penalty_ms", "must be >= 0")


#: Default-section payload; the digest only carries ``constellation``
#: when a scenario moves off this, so pre-refactor digests are stable.
_BASELINE_CONSTELLATION_PAYLOAD: Dict[str, Any] = {
    f.name: (
        list(getattr(ConstellationSpec(), f.name))
        if isinstance(getattr(ConstellationSpec(), f.name), tuple)
        else getattr(ConstellationSpec(), f.name)
    )
    for f in fields(ConstellationSpec)
}


@dataclass(frozen=True)
class BeamsSpec:
    """Transformations of the default beam plan (Section 6.1)."""

    utilization_scale: float = 1.0
    pep_scale: float = 1.0
    outages: Tuple[str, ...] = ()
    load_cap: float = 0.97
    """Loads are clipped here after scaling (``Beam`` requires < 1)."""

    def _validate(self, path: str) -> None:
        if not 0.0 < self.utilization_scale <= 3.0:
            raise ScenarioError(f"{path}.utilization_scale", "must be in (0, 3]")
        if not 0.0 < self.pep_scale <= 3.0:
            raise ScenarioError(f"{path}.pep_scale", "must be in (0, 3]")
        if not 0.0 < self.load_cap < 1.0:
            raise ScenarioError(f"{path}.load_cap", "must be in (0, 1)")
        known = {beam.beam_id for beam in build_default_beam_map().beams}
        for beam_id in self.outages:
            if beam_id not in known:
                raise ScenarioError(
                    f"{path}.outages",
                    f"unknown beam {beam_id!r} (known: {', '.join(sorted(known))})",
                )
        by_country: Dict[str, List[str]] = {}
        for beam in build_default_beam_map().beams:
            by_country.setdefault(beam.country, []).append(beam.beam_id)
        for country, ids in by_country.items():
            if all(beam_id in self.outages for beam_id in ids):
                raise ScenarioError(
                    f"{path}.outages",
                    f"cannot take every beam of {country} out of service",
                )


@dataclass(frozen=True)
class MacSpec:
    """Return-link MAC framing plus the SatCom stack's processing delays."""

    tdma_frame_s: float = TDMA_FRAME_S
    max_queue_frames: float = 10.0
    aloha_slot_s: float = ALOHA_SLOT_S
    reservation_rtt_s: float = 0.52
    max_backoff_slots: int = 64
    contention_fraction: float = 0.12
    base_processing_s: float = 0.020
    terminal_median_s: float = 0.030
    terminal_sigma: float = 0.85
    stack_jitter_median_s: float = 0.095
    stack_jitter_sigma: float = 1.0

    def _validate(self, path: str) -> None:
        for name in (
            "tdma_frame_s",
            "aloha_slot_s",
            "reservation_rtt_s",
            "terminal_median_s",
            "stack_jitter_median_s",
        ):
            if getattr(self, name) <= 0.0:
                raise ScenarioError(f"{path}.{name}", "must be > 0")
        for name in ("base_processing_s", "terminal_sigma", "stack_jitter_sigma"):
            if getattr(self, name) < 0.0:
                raise ScenarioError(f"{path}.{name}", "must be >= 0")
        if self.max_queue_frames <= 0.0:
            raise ScenarioError(f"{path}.max_queue_frames", "must be > 0")
        if self.max_backoff_slots < 1:
            raise ScenarioError(f"{path}.max_backoff_slots", "must be >= 1")
        if not 0.0 <= self.contention_fraction <= 1.0:
            raise ScenarioError(f"{path}.contention_fraction", "must be in [0, 1]")


@dataclass(frozen=True)
class ChannelSpec:
    """Residual FEC error / ARQ recovery (Ireland's edge-of-coverage tail)."""

    floor_probability: float = 0.002
    edge_probability: float = 0.55
    reference_elevation_deg: float = 20.0
    decay_deg: float = 3.5
    arq_rtt_s: float = 0.52

    def _validate(self, path: str) -> None:
        if not 0.0 <= self.floor_probability < 1.0:
            raise ScenarioError(f"{path}.floor_probability", "must be in [0, 1)")
        if not 0.0 <= self.edge_probability <= 1.0:
            raise ScenarioError(f"{path}.edge_probability", "must be in [0, 1]")
        if self.reference_elevation_deg < 0.0:
            raise ScenarioError(f"{path}.reference_elevation_deg", "must be >= 0")
        if self.decay_deg <= 0.0:
            raise ScenarioError(f"{path}.decay_deg", "must be > 0")
        if self.arq_rtt_s <= 0.0:
            raise ScenarioError(f"{path}.arq_rtt_s", "must be > 0")


@dataclass(frozen=True)
class PepSpec:
    """PEP processing saturation (Section 6.1's congestion mechanism)."""

    setup_scale_s: float = 0.080
    setup_sigma: float = 1.1
    forward_scale_s: float = 0.010
    max_load_ratio: float = 10.0

    def _validate(self, path: str) -> None:
        if self.setup_scale_s < 0.0:
            raise ScenarioError(f"{path}.setup_scale_s", "must be >= 0")
        if self.setup_sigma < 0.0:
            raise ScenarioError(f"{path}.setup_sigma", "must be >= 0")
        if self.forward_scale_s < 0.0:
            raise ScenarioError(f"{path}.forward_scale_s", "must be >= 0")
        if self.max_load_ratio <= 0.0:
            raise ScenarioError(f"{path}.max_load_ratio", "must be > 0")


@dataclass(frozen=True)
class QosSpec:
    """The QoS micro-simulation's link and shaping knobs.

    Never part of the capture digest: the micro-sim is self-contained
    and does not shape the generated flows.
    """

    link_rate_bps: float = 20e6
    duration_s: float = 20.0
    seed: int = 0
    video_shape_bps: Optional[float] = 6e6

    def _validate(self, path: str) -> None:
        if self.link_rate_bps <= 0.0:
            raise ScenarioError(f"{path}.link_rate_bps", "must be > 0")
        if self.duration_s <= 0.0:
            raise ScenarioError(f"{path}.duration_s", "must be > 0")
        if self.video_shape_bps is not None and self.video_shape_bps <= 0.0:
            raise ScenarioError(f"{path}.video_shape_bps", "must be > 0 or null")


def _default_mix(continent: str) -> Dict[str, float]:
    return dict(PLAN_MIX_BY_CONTINENT[continent])


@dataclass(frozen=True)
class PlansSpec:
    """Commercial plan adoption per continent (Section 6.5)."""

    europe_mix: Dict[str, float] = field(
        default_factory=lambda: _default_mix("Europe")
    )
    africa_mix: Dict[str, float] = field(
        default_factory=lambda: _default_mix("Africa")
    )

    def __post_init__(self) -> None:
        # Canonical plan-catalog order: the mix feeds an rng.choice over
        # dict order, so two files listing the same weights in different
        # order must still sample identically (and digest identically).
        for name in ("europe_mix", "africa_mix"):
            mix = getattr(self, name)
            ordered = {plan: mix[plan] for plan in PLANS if plan in mix}
            ordered.update({plan: mix[plan] for plan in mix if plan not in PLANS})
            object.__setattr__(self, name, ordered)

    def _validate(self, path: str) -> None:
        for name in ("europe_mix", "africa_mix"):
            mix = getattr(self, name)
            if not mix:
                raise ScenarioError(f"{path}.{name}", "must not be empty")
            for plan, weight in mix.items():
                if plan not in PLANS:
                    raise ScenarioError(
                        f"{path}.{name}.{plan}",
                        f"unknown plan (known: {', '.join(PLANS)})",
                    )
                if weight <= 0.0:
                    raise ScenarioError(
                        f"{path}.{name}.{plan}", "weight must be > 0"
                    )

    def mix_by_continent(self) -> Dict[str, Dict[str, float]]:
        return {"Europe": dict(self.europe_mix), "Africa": dict(self.africa_mix)}


@dataclass(frozen=True)
class PopulationSpec:
    """Who subscribes."""

    n_customers: int = 600
    countries: Optional[Tuple[str, ...]] = None

    def _validate(self, path: str) -> None:
        if self.n_customers <= 0:
            raise ScenarioError(f"{path}.n_customers", "must be >= 1")
        if self.countries is not None:
            if not self.countries:
                raise ScenarioError(f"{path}.countries", "must not be empty")
            for name in self.countries:
                if name not in COUNTRIES:
                    raise ScenarioError(
                        f"{path}.countries",
                        f"unknown country {name!r} "
                        f"(known: {', '.join(COUNTRIES)})",
                    )


@dataclass(frozen=True)
class WorkloadSpec:
    """What the population does over the capture."""

    days: int = 5
    seed: int = 2022
    flow_scale: float = 1.0
    include_dns: bool = True
    dns_flows_per_day: float = 25.0
    n_shards: Optional[int] = None

    def _validate(self, path: str) -> None:
        if self.days <= 0:
            raise ScenarioError(f"{path}.days", "must be >= 1")
        if self.flow_scale <= 0.0:
            raise ScenarioError(f"{path}.flow_scale", "must be > 0")
        if self.dns_flows_per_day < 0.0:
            raise ScenarioError(f"{path}.dns_flows_per_day", "must be >= 0")
        if self.n_shards is not None and self.n_shards <= 0:
            raise ScenarioError(f"{path}.n_shards", "must be >= 1 or null")


#: Scenario-facing category keys → :class:`ServiceCategory`.
_CATEGORY_KEYS: Dict[str, ServiceCategory] = {
    category.name.lower(): category for category in ServiceCategory
}


@dataclass(frozen=True)
class QoeSpec:
    """Video-QoE session knobs (``traffic.qoe``)."""

    enabled: bool = False
    sessions_per_day: float = 0.6
    chunk_s: float = 4.0
    startup_chunks: int = 3
    max_buffer_s: float = 30.0
    bitrate_ladder_mbps: Tuple[float, ...] = (1.0, 2.5, 4.0, 8.0, 16.0)
    duration: str = "lognormal(900.0,0.8)"
    shape_bps: Optional[float] = None

    def _validate(self, path: str) -> None:
        if self.sessions_per_day < 0.0:
            raise ScenarioError(f"{path}.sessions_per_day", "must be >= 0")
        if self.chunk_s <= 0.0:
            raise ScenarioError(f"{path}.chunk_s", "must be > 0")
        if self.startup_chunks < 1:
            raise ScenarioError(f"{path}.startup_chunks", "must be >= 1")
        if self.max_buffer_s < self.chunk_s:
            raise ScenarioError(f"{path}.max_buffer_s", "must be >= chunk_s")
        if not self.bitrate_ladder_mbps:
            raise ScenarioError(f"{path}.bitrate_ladder_mbps", "must not be empty")
        previous = 0.0
        for rate in self.bitrate_ladder_mbps:
            if rate <= previous:
                raise ScenarioError(
                    f"{path}.bitrate_ladder_mbps",
                    "must be ascending positive rates",
                )
            previous = rate
        try:
            parse_spec(self.duration)
        except DistributionError as exc:
            raise ScenarioError(f"{path}.duration", str(exc)) from exc
        if self.shape_bps is not None and self.shape_bps <= 0.0:
            raise ScenarioError(f"{path}.shape_bps", "must be > 0 or null")


@dataclass(frozen=True)
class TrafficSpec:
    """The session-structured traffic model (DESIGN §15).

    All-defaults reproduces the legacy hard-coded draws bit-for-bit
    and contributes nothing to the digest; any deviation (a category
    weight, a per-service distribution spec string, enabling QoE
    sessions) makes the section content and forks the capture
    identity — exactly the ``constellation`` discipline.
    """

    category_weights: Dict[str, float] = field(default_factory=dict)
    size_overrides: Dict[str, str] = field(default_factory=dict)
    flows_overrides: Dict[str, str] = field(default_factory=dict)
    qoe: QoeSpec = field(default_factory=QoeSpec)

    def _validate(self, path: str) -> None:
        for key, weight in self.category_weights.items():
            if key not in _CATEGORY_KEYS:
                raise ScenarioError(
                    f"{path}.category_weights.{key}",
                    f"unknown category (known: {', '.join(_CATEGORY_KEYS)})",
                )
            if not isinstance(weight, (int, float)) or weight <= 0:
                raise ScenarioError(
                    f"{path}.category_weights.{key}", "must be > 0"
                )
        for field_name in ("size_overrides", "flows_overrides"):
            for svc, spec in getattr(self, field_name).items():
                if svc not in SERVICES:
                    raise ScenarioError(
                        f"{path}.{field_name}.{svc}",
                        f"unknown service (known: {', '.join(SERVICES)})",
                    )
                try:
                    parse_spec(spec)
                except DistributionError as exc:
                    raise ScenarioError(
                        f"{path}.{field_name}.{svc}", str(exc)
                    ) from exc
        self.qoe._validate(f"{path}.qoe")


@dataclass(frozen=True)
class StreamSpec:
    """Window plan of streaming captures — content, like ``n_shards``."""

    window_days: int = 1

    def _validate(self, path: str) -> None:
        if self.window_days <= 0:
            raise ScenarioError(f"{path}.window_days", "must be >= 1")


@dataclass(frozen=True)
class ExecutionSpec:
    """How to run — never content, never part of any digest."""

    workers: int = 1
    """Worker processes; 0 means one per core."""
    compress: bool = True
    """Compress spilled stream windows (CPU for ~3x less disk)."""
    pipeline_depth: int = 1
    """Windows the stream producer may generate ahead of the commit
    thread; 0 runs lockstep. Peak residency is ``depth + 2`` window
    frames."""
    engine: str = "python"
    """Packet-path compute engine: ``python`` (per-packet oracle) or
    ``vectorized`` (numpy batch kernels, digest-identical)."""

    def _validate(self, path: str) -> None:
        if self.workers < 0:
            raise ScenarioError(f"{path}.workers", "must be >= 0 (0 = one per core)")
        if self.pipeline_depth < 0:
            raise ScenarioError(f"{path}.pipeline_depth", "must be >= 0 (0 = lockstep)")
        from repro.kernels import ENGINES

        if self.engine not in ENGINES:
            raise ScenarioError(
                f"{path}.engine", f"must be one of {', '.join(ENGINES)}"
            )


@dataclass(frozen=True)
class FleetSpec:
    """Distributed fleet capture (``repro.fleet``) — never content.

    Like ``execution``, the section only decides *how* the capture is
    produced: the merged fleet rollup is bit-identical to the
    single-process stream for any partition count, so none of these
    knobs contribute to the digest.
    """

    partitions: int = 1
    """Disjoint shard-range partitions the capture is split into
    (clamped to the shard count of the plan)."""
    max_parallel: int = 4
    """Worker subprocesses allowed to run at once."""
    straggler_timeout_s: float = 120.0
    """Seconds without checkpoint progress before the coordinator
    SIGKILLs a worker and heals it via resume."""
    max_heals: int = 3
    """Heal (resume) attempts per partition before the fleet fails."""

    def _validate(self, path: str) -> None:
        if self.partitions < 1:
            raise ScenarioError(f"{path}.partitions", "must be >= 1")
        if self.max_parallel < 1:
            raise ScenarioError(f"{path}.max_parallel", "must be >= 1")
        if self.straggler_timeout_s <= 0.0:
            raise ScenarioError(f"{path}.straggler_timeout_s", "must be > 0")
        if self.max_heals < 0:
            raise ScenarioError(f"{path}.max_heals", "must be >= 0")


@dataclass(frozen=True)
class FaultsSpec:
    """Deterministic fault injection for chaos runs (``repro.faults``).

    Disabled by default, and *never* content: faults change retries and
    timing, not the generated flows, so the section stays outside every
    digest — arming a chaos plan neither invalidates warm caches nor
    forks the capture identity. Either name a registered ``profile``
    (e.g. ``flaky-disk``) or compose a plan from the rate knobs; both
    can be combined, and ``seed`` makes the chaos reproducible.
    """

    profile: str = ""
    """A :data:`repro.faults.FAULT_PROFILES` name, or empty."""
    seed: int = 0
    io_error_rate: float = 0.0
    """Per-operation probability of a transient write error."""
    io_fail_times: int = 1
    """Consecutive failing attempts per triggered IO fault."""
    fsync_error_rate: float = 0.0
    worker_crash_rate: float = 0.0
    """Per-(window, shard) probability a forked worker dies."""
    kill_at: Tuple[str, ...] = ()
    """Named kill-points (see ``repro.stream.stream_kill_points``)."""

    def _validate(self, path: str) -> None:
        from repro.faults import FAULT_PROFILES

        if self.profile and self.profile not in FAULT_PROFILES:
            raise ScenarioError(
                f"{path}.profile",
                f"unknown fault profile {self.profile!r} "
                f"(known: {', '.join(FAULT_PROFILES)})",
            )
        for name in ("io_error_rate", "fsync_error_rate", "worker_crash_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ScenarioError(f"{path}.{name}", "must be in [0, 1]")
        if self.io_fail_times < 1:
            raise ScenarioError(f"{path}.io_fail_times", "must be >= 1")

    @property
    def enabled(self) -> bool:
        return bool(
            self.profile
            or self.io_error_rate
            or self.fsync_error_rate
            or self.worker_crash_rate
            or self.kill_at
        )


@dataclass(frozen=True)
class ServeSpec:
    """The live analytics service (``repro.serve``) — never content.

    Serving is a read path over the committed rollup: it can never
    change which flows a capture contains, so the section stays
    outside every digest, exactly like ``execution`` and ``fleet``.
    """

    enabled: bool = False
    """Serve live reports while the capture runs."""
    host: str = "127.0.0.1"
    port: int = 0
    """TCP port; 0 binds an ephemeral port (printed at startup)."""
    linger_s: float = 0.0
    """Seconds to keep serving after the capture completes — the CI
    smoke job and dashboard demos poll the finished state."""
    publish_interval_s: float = 0.25
    """Fleet only: minimum seconds between merged partial-state
    publications while the coordinator polls its workers."""
    max_inflight: int = 64
    """Concurrent renders the server allows before queueing requests
    (backpressure; renders are GIL-bound numpy)."""

    def _validate(self, path: str) -> None:
        if not 0 <= self.port <= 65535:
            raise ScenarioError(f"{path}.port", "must be in [0, 65535]")
        if not self.host:
            raise ScenarioError(f"{path}.host", "must be non-empty")
        if self.linger_s < 0:
            raise ScenarioError(f"{path}.linger_s", "must be >= 0")
        if self.publish_interval_s <= 0:
            raise ScenarioError(f"{path}.publish_interval_s", "must be > 0")
        if self.max_inflight < 1:
            raise ScenarioError(f"{path}.max_inflight", "must be >= 1")


_SECTION_TYPES: Dict[str, type] = {
    "geometry": GeometrySpec,
    "constellation": ConstellationSpec,
    "beams": BeamsSpec,
    "mac": MacSpec,
    "channel": ChannelSpec,
    "pep": PepSpec,
    "qos": QosSpec,
    "plans": PlansSpec,
    "population": PopulationSpec,
    "workload": WorkloadSpec,
    "traffic": TrafficSpec,
    "stream": StreamSpec,
    "execution": ExecutionSpec,
    "fleet": FleetSpec,
    "faults": FaultsSpec,
    "serve": ServeSpec,
}

#: Sections that decide which flows a capture contains. ``qos`` shapes
#: only the micro-sim; ``execution`` only wall-clock; ``stream`` only
#: windowing (``stream_capture_key`` layers it on separately, exactly
#: as the legacy path did); ``fleet`` only partitions execution (the
#: merged rollup is bit-identical at any partition count); ``faults``
#: only injects failures (retried or healed, never sampled into the
#: flows); ``name``/``description`` are labels. ``constellation`` joins
#: conditionally: :meth:`Scenario.content_payload` appends it only when
#: it leaves the all-defaults payload, keeping every pre-refactor
#: digest byte-stable while giving orbital scenarios their own identity.
#: ``traffic`` follows the same conditional discipline — distribution
#: overrides and QoE sessions change the flows, so a non-default
#: section is content, while the default contributes nothing.
_CONTENT_SECTIONS = (
    "geometry",
    "beams",
    "mac",
    "channel",
    "pep",
    "plans",
    "population",
    "workload",
)

#: Model sections — when all of these sit at the baseline defaults the
#: digest falls back to the legacy ``WorkloadConfig`` cache key.
_MODEL_SECTIONS = ("geometry", "beams", "mac", "channel", "pep", "plans")


# --------------------------------------------------------------------------
# Coercion (mapping -> typed sections, with path-qualified errors)
# --------------------------------------------------------------------------


def _coerce(raw: Any, hint: Any, path: str) -> Any:
    origin = get_origin(hint)
    if isinstance(hint, type) and dataclasses.is_dataclass(hint):
        # nested section (e.g. traffic.qoe): recurse with the same
        # unknown-key/path-qualified discipline as top-level sections
        return _build_section(hint, raw, path)
    if origin is Union:  # Optional[X]
        args = [a for a in get_args(hint) if a is not type(None)]
        if raw is None:
            return None
        return _coerce(raw, args[0], path)
    if hint is float:
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ScenarioError(path, f"expected a number, got {raw!r}")
        return float(raw)
    if hint is int:
        if isinstance(raw, bool):
            raise ScenarioError(path, f"expected an integer, got {raw!r}")
        if isinstance(raw, float):
            if not raw.is_integer():
                raise ScenarioError(path, f"expected an integer, got {raw!r}")
            return int(raw)
        if not isinstance(raw, int):
            raise ScenarioError(path, f"expected an integer, got {raw!r}")
        return raw
    if hint is bool:
        if not isinstance(raw, bool):
            raise ScenarioError(path, f"expected true/false, got {raw!r}")
        return raw
    if hint is str:
        if not isinstance(raw, str):
            raise ScenarioError(path, f"expected a string, got {raw!r}")
        return raw
    if origin is tuple:
        if isinstance(raw, str) or not isinstance(raw, (list, tuple)):
            raise ScenarioError(path, f"expected a list, got {raw!r}")
        element = get_args(hint)[0]
        return tuple(_coerce(item, element, path) for item in raw)
    if origin is dict:
        if not isinstance(raw, Mapping):
            raise ScenarioError(path, f"expected a table/mapping, got {raw!r}")
        _, value_hint = get_args(hint)
        return {
            str(key): _coerce(value, value_hint, f"{path}.{key}")
            for key, value in raw.items()
        }
    raise ScenarioError(path, f"unsupported field type {hint!r}")  # pragma: no cover


def _build_section(cls: type, data: Mapping[str, Any], path: str) -> Any:
    if not isinstance(data, Mapping):
        raise ScenarioError(path, f"expected a table/mapping, got {data!r}")
    hints = get_type_hints(cls)
    known = {f.name for f in fields(cls)}
    kwargs: Dict[str, Any] = {}
    for key, raw in data.items():
        if key not in known:
            raise ScenarioError(
                f"{path}.{key}",
                f"unknown key (expected one of: {', '.join(sorted(known))})",
            )
        kwargs[key] = _coerce(raw, hints[key], f"{path}.{key}")
    return cls(**kwargs)


def _section_payload(section: Any) -> Dict[str, Any]:
    """JSON-ready payload of one section (tuples as lists).

    Containers are copied: callers (``with_overrides``) mutate the
    payload, and the frozen sections share their dict fields.
    """
    payload: Dict[str, Any] = {}
    for f in fields(section):
        value = getattr(section, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = _section_payload(value)
        elif isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, dict):
            value = dict(value)
        payload[f.name] = value
    return payload


#: Default ``traffic`` payload: the section enters a digest only when
#: a scenario moves off this (the ``constellation`` discipline), so
#: every pre-refactor digest — baseline-geo included — stays pinned.
_BASELINE_TRAFFIC_PAYLOAD: Dict[str, Any] = _section_payload(TrafficSpec())


# --------------------------------------------------------------------------
# The tree
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """Everything the reproduction needs to run one operator scenario."""

    name: str = "custom"
    description: str = ""
    geometry: GeometrySpec = field(default_factory=GeometrySpec)
    constellation: ConstellationSpec = field(default_factory=ConstellationSpec)
    beams: BeamsSpec = field(default_factory=BeamsSpec)
    mac: MacSpec = field(default_factory=MacSpec)
    channel: ChannelSpec = field(default_factory=ChannelSpec)
    pep: PepSpec = field(default_factory=PepSpec)
    qos: QosSpec = field(default_factory=QosSpec)
    plans: PlansSpec = field(default_factory=PlansSpec)
    population: PopulationSpec = field(default_factory=PopulationSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    stream: StreamSpec = field(default_factory=StreamSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    faults: FaultsSpec = field(default_factory=FaultsSpec)
    serve: ServeSpec = field(default_factory=ServeSpec)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "Scenario":
        """Build and validate a scenario from a nested mapping.

        Sparse: missing sections/fields keep the baseline defaults.
        Unknown sections or keys raise path-qualified
        :class:`ScenarioError`.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError("scenario", f"expected a table/mapping, got {data!r}")
        kwargs: Dict[str, Any] = {}
        for key, raw in data.items():
            if key in ("name", "description"):
                kwargs[key] = _coerce(raw, str, key)
            elif key in _SECTION_TYPES:
                kwargs[key] = _build_section(_SECTION_TYPES[key], raw, key)
            else:
                raise ScenarioError(
                    key,
                    "unknown section (expected one of: name, description, "
                    f"{', '.join(_SECTION_TYPES)})",
                )
        scenario = cls(**kwargs)
        scenario.validate()
        return scenario

    def validate(self) -> "Scenario":
        """Validate every field; raises path-qualified :class:`ScenarioError`."""
        for section_name in _SECTION_TYPES:
            getattr(self, section_name)._validate(section_name)
        return self

    def to_mapping(self) -> Dict[str, Any]:
        """The full nested mapping (inverse of :meth:`from_mapping`)."""
        data: Dict[str, Any] = {"name": self.name, "description": self.description}
        for section_name in _SECTION_TYPES:
            data[section_name] = _section_payload(getattr(self, section_name))
        return data

    def with_overrides(
        self, overrides: Mapping[str, Any], source: str = "--set"
    ) -> "Scenario":
        """A new validated scenario with dotted-path overrides applied.

        Keys are dotted field paths (``beams.utilization_scale``,
        ``plans.europe_mix.sat-100``); string values are parsed as JSON
        literals where possible (``true``, ``1.5``, ``null``,
        ``["Spain"]``) and taken verbatim otherwise.
        """
        if not overrides:
            return self
        data = self.to_mapping()
        for dotted, raw in overrides.items():
            keys = dotted.split(".")
            if not all(keys):
                raise ScenarioError(dotted, f"malformed {source} path")
            node: Dict[str, Any] = data
            for depth, key in enumerate(keys[:-1]):
                if key not in node or not isinstance(node[key], dict):
                    raise ScenarioError(
                        ".".join(keys[: depth + 1]),
                        f"unknown {source} path",
                    )
                node = node[key]
            leaf = keys[-1]
            # Mix tables accept new plan names (validated against
            # PLANS); traffic's per-category / per-service tables
            # accept new keys the same way (validated by TrafficSpec).
            if leaf not in node and not (
                len(keys) == 3 and keys[0] in ("plans", "traffic")
            ):
                raise ScenarioError(dotted, f"unknown {source} path")
            node[leaf] = _parse_override_value(raw)
        return Scenario.from_mapping(data)

    # -- identity ----------------------------------------------------------

    def content_payload(self) -> Dict[str, Any]:
        """The capture-defining payload (sections in `_CONTENT_SECTIONS`).

        ``constellation`` is appended only when it deviates from the
        all-defaults payload: a default (static) section must not
        perturb the digest of any pre-refactor scenario.
        """
        payload = {
            section: _section_payload(getattr(self, section))
            for section in _CONTENT_SECTIONS
        }
        constellation = _section_payload(self.constellation)
        if constellation != _BASELINE_CONSTELLATION_PAYLOAD:
            payload["constellation"] = constellation
        traffic = _section_payload(self.traffic)
        if traffic != _BASELINE_TRAFFIC_PAYLOAD:
            payload["traffic"] = traffic
        return payload

    def models_payload(self) -> Dict[str, Any]:
        payload = {
            section: _section_payload(getattr(self, section))
            for section in _MODEL_SECTIONS
        }
        constellation = _section_payload(self.constellation)
        if constellation != _BASELINE_CONSTELLATION_PAYLOAD:
            payload["constellation"] = constellation
        traffic = _section_payload(self.traffic)
        if traffic != _BASELINE_TRAFFIC_PAYLOAD:
            payload["traffic"] = traffic
        return payload

    def is_baseline_models(self) -> bool:
        """True when every model section sits at the baseline defaults."""
        return self.models_payload() == _BASELINE_MODELS_PAYLOAD

    def digest(self) -> str:
        """Hex digest identifying the capture this scenario generates.

        This is the cache identity: ``repro.cache`` keys one-shot and
        streaming captures with it. With all model sections at baseline
        it equals the legacy ``WorkloadConfig`` cache key (same salt
        discipline — bump :data:`repro.cache.CACHE_SALT` when generator
        sampling changes), so pre-scenario cache entries keep hitting.
        """
        from repro.cache import CACHE_SALT, config_cache_key

        if self.is_baseline_models():
            return config_cache_key(self.workload_config())
        blob = json.dumps(
            {
                "salt": CACHE_SALT,
                "scenario_salt": SCENARIO_SALT,
                "content": self.content_payload(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    # -- builders ----------------------------------------------------------

    def workload_config(self) -> WorkloadConfig:
        """The :class:`WorkloadConfig` slice of the tree."""
        return WorkloadConfig(
            n_customers=self.population.n_customers,
            days=self.workload.days,
            seed=self.workload.seed,
            countries=(
                list(self.population.countries)
                if self.population.countries is not None
                else None
            ),
            flow_scale=self.workload.flow_scale,
            include_dns=self.workload.include_dns,
            dns_flows_per_day=self.workload.dns_flows_per_day,
            n_workers=self.execution.workers,
            n_shards=self.workload.n_shards,
        )

    def build_beam_map(self) -> BeamMap:
        """The scenario's beam plan: default map, scaled, minus outages."""
        base = build_default_beam_map()
        spec = self.beams
        if (
            spec.utilization_scale == 1.0
            and spec.pep_scale == 1.0
            and not spec.outages
        ):
            return base
        surviving: Dict[str, List[Beam]] = {}
        original_count: Dict[str, int] = {}
        for beam in base.beams:
            original_count[beam.country] = original_count.get(beam.country, 0) + 1
            if beam.beam_id not in spec.outages:
                surviving.setdefault(beam.country, []).append(beam)
        beams: List[Beam] = []
        for country, country_beams in surviving.items():
            # Survivors absorb the load of beams taken out of service.
            absorb = original_count[country] / len(country_beams)
            for beam in country_beams:
                beams.append(
                    Beam(
                        beam_id=beam.beam_id,
                        country=beam.country,
                        capacity_gbps=beam.capacity_gbps,
                        peak_utilization=min(
                            spec.load_cap,
                            beam.peak_utilization * spec.utilization_scale * absorb,
                        ),
                        pep_load=min(
                            spec.load_cap,
                            beam.pep_load * spec.pep_scale * absorb,
                        ),
                    )
                )
        return BeamMap(beams=beams)

    def build_geometry(self):
        """A GEO :class:`SatelliteGeometry` or a LEO adapter."""
        if self.geometry.orbit == "leo":
            return LeoGeometryAdapter(
                shell=LeoShell(
                    altitude_m=self.geometry.leo_altitude_km * 1000.0,
                    min_elevation_deg=self.geometry.leo_min_elevation_deg,
                ),
                typical_elevation_deg=self.geometry.leo_typical_elevation_deg,
            )
        return SatelliteGeometry(
            satellite_longitude_deg=self.geometry.satellite_longitude_deg
        )

    def build_rtt_model(self):
        """The satellite RTT sampler the scenario prescribes."""
        from repro.satcom.delay_model import SatelliteRttModel

        mac = self.mac
        return SatelliteRttModel(
            geometry=self.build_geometry(),
            beam_map=self.build_beam_map(),
            tdma=TdmaModel(
                frame_s=mac.tdma_frame_s, max_queue_frames=mac.max_queue_frames
            ),
            aloha=SlottedAlohaModel(
                slot_s=mac.aloha_slot_s,
                reservation_rtt_s=mac.reservation_rtt_s,
                max_backoff_slots=mac.max_backoff_slots,
            ),
            channel=ChannelModel(
                floor_probability=self.channel.floor_probability,
                edge_probability=self.channel.edge_probability,
                reference_elevation_deg=self.channel.reference_elevation_deg,
                decay_deg=self.channel.decay_deg,
                arq_rtt_s=self.channel.arq_rtt_s,
            ),
            pep=PepCapacityModel(
                setup_scale_s=self.pep.setup_scale_s,
                setup_sigma=self.pep.setup_sigma,
                forward_scale_s=self.pep.forward_scale_s,
                max_load_ratio=self.pep.max_load_ratio,
            ),
            base_processing_s=mac.base_processing_s,
            terminal_median_s=mac.terminal_median_s,
            terminal_sigma=mac.terminal_sigma,
            stack_jitter_median_s=mac.stack_jitter_median_s,
            stack_jitter_sigma=mac.stack_jitter_sigma,
            contention_fraction=mac.contention_fraction,
        )

    def build_constellation(self) -> ConstellationModel:
        """The ``constellation`` section as a :class:`ConstellationModel`."""
        spec = self.constellation
        shells = tuple(
            LeoShell(
                altitude_m=altitude_km * 1000.0,
                min_elevation_deg=spec.min_elevation_deg,
                bent_pipe=spec.bent_pipe,
            )
            for altitude_km in spec.altitudes_km
        )
        return ConstellationModel(
            shells=shells,
            satellites_per_shell=tuple(spec.satellites_per_shell),
            reconfiguration_s=spec.reconfiguration_s,
            handover_window_s=spec.handover_window_s,
        )

    def build_delay_source(self):
        """The scenario's :class:`~repro.satcom.delaysource.DelaySource`.

        ``static`` mode wraps :meth:`build_rtt_model` verbatim
        (byte-identical sampling); ``orbital`` mode layers the
        constellation's deterministic time-varying floor on top.
        """
        from repro.satcom.delaysource import (
            ConstellationDelaySource,
            StaticDelaySource,
        )

        model = self.build_rtt_model()
        if self.constellation.mode == "orbital":
            return ConstellationDelaySource(
                rtt_model=model,
                constellation=self.build_constellation(),
                handover_penalty_s=self.constellation.handover_penalty_ms / 1000.0,
            )
        return StaticDelaySource(rtt_model=model)

    def build_traffic_model(self) -> TrafficModel:
        """The ``traffic`` section resolved to a runtime model.

        Spec strings become sampled distributions, category keys become
        :class:`ServiceCategory` members, and the ``qoe`` sub-section
        (when enabled) becomes a
        :class:`~repro.traffic.sessions.VideoQoeConfig`.
        """
        from repro.traffic.sessions import VideoQoeConfig

        spec = self.traffic
        qoe = None
        if spec.qoe.enabled:
            qoe = VideoQoeConfig(
                sessions_per_day=spec.qoe.sessions_per_day,
                chunk_s=spec.qoe.chunk_s,
                startup_chunks=spec.qoe.startup_chunks,
                max_buffer_s=spec.qoe.max_buffer_s,
                ladder_mbps=tuple(spec.qoe.bitrate_ladder_mbps),
                duration=parse_spec(spec.qoe.duration),
                shape_bps=spec.qoe.shape_bps,
            )
        return TrafficModel(
            category_weights={
                _CATEGORY_KEYS[key]: float(weight)
                for key, weight in spec.category_weights.items()
            },
            size_dists={
                name: parse_spec(text)
                for name, text in spec.size_overrides.items()
            },
            flows_dists={
                name: parse_spec(text)
                for name, text in spec.flows_overrides.items()
            },
            qoe=qoe,
        )

    def build_generator(self):
        """A fully-constructed :class:`WorkloadGenerator` for this scenario."""
        from repro.traffic.workload import WorkloadGenerator

        return WorkloadGenerator(
            config=self.workload_config(),
            delay_source=self.build_delay_source(),
            plan_mix=self.plans.mix_by_continent(),
            traffic=self.build_traffic_model(),
        )

    def fault_plan(self):
        """The ``faults`` section as a :class:`repro.faults.FaultPlan`.

        ``None`` when the section is disabled (the default). A named
        profile seeds the plan; the rate knobs and ``kill_at`` layer on
        top of it.
        """
        from repro.faults import FAULT_PROFILES, FaultPlan, IoFault, WorkerCrash

        spec = self.faults
        if not spec.enabled:
            return None
        if spec.profile:
            plan = dataclasses.replace(FAULT_PROFILES[spec.profile], seed=spec.seed)
        else:
            plan = FaultPlan(seed=spec.seed)
        io_faults = list(plan.io_faults)
        if spec.io_error_rate > 0:
            io_faults.append(
                IoFault(
                    op="*",
                    stage="write",
                    rate=spec.io_error_rate,
                    fail_times=spec.io_fail_times,
                )
            )
        if spec.fsync_error_rate > 0:
            io_faults.append(
                IoFault(
                    op="*",
                    stage="fsync",
                    rate=spec.fsync_error_rate,
                    fail_times=spec.io_fail_times,
                )
            )
        crashes = list(plan.worker_crashes)
        if spec.worker_crash_rate > 0:
            crashes.append(WorkerCrash(rate=spec.worker_crash_rate))
        return dataclasses.replace(
            plan,
            io_faults=tuple(io_faults),
            worker_crashes=tuple(crashes),
            kill_at=plan.kill_at + tuple(spec.kill_at),
        )

    def stream_config(self):
        """A :class:`~repro.stream.producer.StreamConfig` bound to this tree."""
        from repro.stream.producer import StreamConfig

        return StreamConfig(
            workload=self.workload_config(),
            window_days=self.stream.window_days,
            compress=self.execution.compress,
            scenario=self,
            faults=self.fault_plan(),
            pipeline_depth=self.execution.pipeline_depth,
            engine=self.execution.engine,
        )

    def qos_config(self) -> QosScenarioConfig:
        """The QoS micro-simulation config of the ``qos`` section."""
        return QosScenarioConfig(
            link_rate_bps=self.qos.link_rate_bps,
            duration_s=self.qos.duration_s,
            seed=self.qos.seed,
            video_shape_bps=self.qos.video_shape_bps,
        )


def _parse_override_value(raw: Any) -> Any:
    """CLI ``--set`` values arrive as strings; parse JSON-ish literals."""
    if not isinstance(raw, str):
        return raw
    try:
        return json.loads(raw)
    except ValueError:
        return raw


_BASELINE_MODELS_PAYLOAD = Scenario().models_payload()


# --------------------------------------------------------------------------
# Loader
# --------------------------------------------------------------------------


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario from a TOML or JSON file (by suffix)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(str(path), f"cannot read scenario file ({exc})") from exc
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ScenarioError(str(path), f"invalid JSON ({exc})") from exc
    elif suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(str(path), f"invalid TOML ({exc})") from exc
    else:
        raise ScenarioError(
            str(path), "unsupported scenario file type (use .toml or .json)"
        )
    return Scenario.from_mapping(data)


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

_REGISTRY: Dict[str, Scenario] = {}


def _register(base: Scenario, name: str, description: str, **overrides: Any) -> None:
    scenario = base.with_overrides(
        {"name": name, "description": description, **overrides}
    )
    _REGISTRY[name] = scenario


_BASELINE = Scenario(
    name="baseline-geo",
    description="The monitored GEO operator exactly as the paper observed it",
).validate()
_REGISTRY[_BASELINE.name] = _BASELINE

_register(
    _BASELINE,
    "congested-beam",
    "Every beam pushed toward saturation: radio load x1.25, PEP load x1.3",
    **{"beams.utilization_scale": 1.25, "beams.pep_scale": 1.3},
)

_register(
    _BASELINE,
    "beam-outage",
    "Two Spanish beams and one UK beam out; survivors absorb their load",
    **{"beams.outages": ("spain-1", "spain-2", "uk-1")},
)

#: LEO-scale MAC/channel/PEP constants shared by every LEO preset (the
#: ``leo`` values from PR 4, unchanged so its digest stays put).
_LEO_STACK_OVERRIDES: Dict[str, Any] = {
    "geometry.orbit": "leo",
    "mac.tdma_frame_s": 0.002,
    "mac.aloha_slot_s": 0.0005,
    "mac.reservation_rtt_s": 0.008,
    "mac.base_processing_s": 0.004,
    "mac.terminal_median_s": 0.010,
    "mac.stack_jitter_median_s": 0.006,
    "channel.arq_rtt_s": 0.012,
    "pep.setup_scale_s": 0.012,
}

_register(
    _BASELINE,
    "leo",
    "A 550 km LEO shell with tight MAC framing (the Starlink counterpoint)",
    **_LEO_STACK_OVERRIDES,
)

_register(
    _BASELINE,
    "heavy-growth",
    "Subscriber growth ahead of capacity: +50% customers, busier beams, "
    "premium-plan shift",
    **{
        "population.n_customers": 900,
        "workload.flow_scale": 1.3,
        "beams.utilization_scale": 1.12,
        "beams.pep_scale": 1.15,
        "plans.europe_mix.sat-100": 0.45,
        "plans.africa_mix.sat-30": 0.45,
    },
)

_register(
    _BASELINE,
    "leo-starlink",
    "The 550 km shell in orbital mode: per-epoch satellite selection, "
    "15 s reconfiguration handovers, latitude-dependent elevation",
    **{
        **_LEO_STACK_OVERRIDES,
        "constellation.mode": "orbital",
    },
)

_register(
    _BASELINE,
    "video-streaming",
    "Session-structured ABR video: per-session QoE (rebuffer ratio, "
    "resolution level, switches) on unshaped plans",
    **{"traffic.qoe.enabled": True},
)

_register(
    _BASELINE,
    "shaped-vs-unshaped",
    "The video-streaming workload under a 4 Mb/s operator video shaper "
    "(compare with: repro scorecard --scenario video-streaming "
    "--compare shaped-vs-unshaped)",
    **{"traffic.qoe.enabled": True, "traffic.qoe.shape_bps": 4e6},
)

_register(
    _BASELINE,
    "multi-orbit",
    "Two orbital shells (550 km + 1150 km) serving epochs weighted by "
    "satellite count",
    **{
        **_LEO_STACK_OVERRIDES,
        "constellation.mode": "orbital",
        "constellation.altitudes_km": (550.0, 1150.0),
        "constellation.satellites_per_shell": (1584, 720),
    },
)


def scenario_names() -> List[str]:
    """Registered scenario names, registration order."""
    return list(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """A registered scenario by name (raises :class:`ScenarioError`)."""
    if name not in _REGISTRY:
        raise ScenarioError(
            "scenario",
            f"unknown scenario {name!r} (known: {', '.join(_REGISTRY)})",
        )
    return _REGISTRY[name]


def resolve_scenario(name_or_path: str) -> Scenario:
    """A scenario by registry name, else by file path (TOML/JSON)."""
    if name_or_path in _REGISTRY:
        return _REGISTRY[name_or_path]
    path = Path(name_or_path)
    if path.suffix.lower() in (".toml", ".json") or path.exists():
        return load_scenario(path)
    raise ScenarioError(
        "scenario",
        f"{name_or_path!r} is neither a registered scenario "
        f"(known: {', '.join(_REGISTRY)}) nor a .toml/.json file",
    )
