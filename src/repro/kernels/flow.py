"""Batched flow metering.

:func:`process_packet_batch` meters a batch of packets against a
:class:`~repro.flowmeter.meter.FlowMeter` with the same observable
result as feeding them to ``meter.process`` one at a time, in order —
same flow table, counters, RTT samples, DPI results, and the same
records in the same order. The win comes from hoisting the per-packet
costs to per-batch or per-flow: one attribute-extraction pass builds
columnar arrays and groups packets by flow, counters fold as masked
numpy sums, the flow-finished scan is a vector accumulate instead of
a per-packet dict walk, and DPI replay stops as soon as the engine
reports :attr:`~repro.flowmeter.dpi.DpiEngine.observable_frozen`.

Exactness contract
------------------
The kernel either mutates the meter *exactly* as the per-packet
oracle would and returns ``True``, or detects a shape it cannot
reproduce and returns ``False`` **before mutating anything** — the
caller then replays the batch through the python path. The two
unsupported shapes, both rare in real traffic, are found in the
read-only pre-scan:

* a flow that would *finish* (RST, or FIN in both directions) before
  its last packet of the batch — the oracle emits mid-batch and a
  later packet could re-open the 5-tuple;
* a TCP group whose first packet would be dropped by the stray
  teardown-ACK rule while a later packet opens the flow — the oracle
  ignores the stray, so batch membership differs from group
  membership.

Timestamps, byte counts and RTT math go through the same python-float
operations as the oracle (numpy is used only for integer sums, masks
and boolean accumulates), so there is no float-precision drift.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.net.flowkey import Direction, FiveTuple
from repro.net.packet import IPProtocol, TCPFlags

_C2S = Direction.CLIENT_TO_SERVER
_S2C = Direction.SERVER_TO_CLIENT
_FIN = int(TCPFlags.FIN)
_SYN = int(TCPFlags.SYN)
_RST = int(TCPFlags.RST)
_ACK = int(TCPFlags.ACK)


def process_packet_batch(meter, packets: Sequence) -> bool:
    """Meter ``packets`` in one batched pass; see the module docstring
    for the exactness contract. Returns ``False`` (having changed
    nothing) when the batch needs the per-packet oracle."""
    n = len(packets)
    if n == 0:
        return True

    # -- columnar extraction + flow grouping (one python pass) ---------
    ts = np.empty(n, dtype=np.float64)
    plen = np.empty(n, dtype=np.int64)
    flags = np.empty(n, dtype=np.int64)
    src_ip = np.empty(n, dtype=np.int64)
    src_port = np.empty(n, dtype=np.int64)
    groups: Dict[tuple, List[int]] = {}
    for i, packet in enumerate(packets):
        ts[i] = packet.timestamp
        plen[i] = len(packet.payload)
        flags[i] = packet.flags
        sip = packet.src_ip
        spt = packet.src_port
        src_ip[i] = sip
        src_port[i] = spt
        a = (sip, spt)
        b = (packet.dst_ip, packet.dst_port)
        key = (a, b, packet.protocol) if a <= b else (b, a, packet.protocol)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [i]
        else:
            bucket.append(i)

    fin = (flags & _FIN) != 0
    rst = (flags & _RST) != 0
    has_ack = (flags & _ACK) != 0
    opens = ((flags & _SYN) != 0) | (plen > 0)

    # -- read-only pre-scan: resolve states, reject unsupported shapes -
    by_orientation = meter._by_orientation
    plan = []
    for idx in groups.values():
        first = packets[idx[0]]
        tcp = first.protocol == IPProtocol.TCP
        forward, _ = FiveTuple.from_packet(first)
        hit = by_orientation.get(forward)
        state = hit[0] if hit is not None else None
        if state is None and tcp:
            g_opens = opens[idx]
            if not g_opens.any():
                # Every packet is a stray teardown ACK: the oracle
                # ignores them all (no flow is ever opened).
                plan.append((idx, None, None, None, False, tcp))
                continue
            if not g_opens[0]:
                return False  # stray prefix before the opening packet
        key = state.key if state is not None else forward
        gidx = np.asarray(idx, dtype=np.int64)
        c2s = (src_ip[gidx] == key.client_ip) & (src_port[gidx] == key.client_port)
        emit_last = False
        if tcp:
            fin_c = np.logical_or.accumulate(fin[gidx] & c2s)
            fin_s = np.logical_or.accumulate(fin[gidx] & ~c2s)
            rst_cum = np.logical_or.accumulate(rst[gidx])
            if state is not None:
                fin_c |= state.fin_seen[_C2S]
                fin_s |= state.fin_seen[_S2C]
                rst_cum |= state.rst_seen
            finished = rst_cum | (fin_c & fin_s)
            if finished.any():
                if int(finished.argmax()) != len(idx) - 1:
                    return False  # flow finishes mid-batch (straddle)
                emit_last = True
        plan.append((idx, gidx, state, c2s, emit_last, tcp))

    # -- mutation: groups in first-packet order, like oracle creation --
    from repro.flowmeter.meter import _FIRST_PKT_TIMES_KEPT, _FlowState

    flows = meter._flows
    emissions = []
    for idx, gidx, state, c2s, emit_last, tcp in plan:
        if gidx is None:
            continue
        if state is None:
            first = packets[idx[0]]
            forward, _ = FiveTuple.from_packet(first)
            state = _FlowState(
                key=forward, ts_start=first.timestamp, ts_end=first.timestamp
            )
            flows[forward] = state
            by_orientation[forward] = (state, _C2S)
            if state.key_reversed != forward:
                by_orientation[state.key_reversed] = (state, _S2C)

        state.ts_end = max(state.ts_end, float(ts[gidx].max()))
        room = _FIRST_PKT_TIMES_KEPT - len(state.first_pkt_times)
        if room > 0:
            state.first_pkt_times.extend(packets[j].timestamp for j in idx[:room])

        gplen = plen[gidx]
        state.bytes_up += int(gplen[c2s].sum())
        state.bytes_down += int(gplen[~c2s].sum())
        n_up = int(c2s.sum())
        state.pkts_up += n_up
        state.pkts_down += len(idx) - n_up

        if tcp:
            rtt = state.rtt
            pending = rtt._pending
            for k, j in enumerate(idx):
                direction, opposite = (_C2S, _S2C) if c2s[k] else (_S2C, _C2S)
                packet = packets[j]
                payload_len = int(plen[j])
                if payload_len > 0:
                    rtt.on_data(direction, packet.seq, payload_len, packet.timestamp)
                # on_ack with nothing pending in the data direction is
                # a provable no-op — skip the call.
                if has_ack[j] and pending[opposite]:
                    rtt.on_ack(direction, packet.ack, packet.timestamp)
            if (fin[gidx] & c2s).any():
                state.fin_seen[_C2S] = True
            if (fin[gidx] & ~c2s).any():
                state.fin_seen[_S2C] = True
            if rst[gidx].any():
                state.rst_seen = True

        dpi = state.dpi
        if not dpi.observable_frozen:
            for k, j in enumerate(idx):
                if plen[j] == 0:
                    continue
                packet = packets[j]
                dpi.on_payload(
                    _C2S if c2s[k] else _S2C, packet.payload, packet.timestamp
                )
                if dpi.observable_frozen:
                    break

        if emit_last:
            emissions.append((idx[-1], state))

    # Emit in finishing-packet order — the oracle's records order.
    for _, state in sorted(emissions, key=lambda item: item[0]):
        meter._emit(state)
    meter.packets_processed += n
    return True
