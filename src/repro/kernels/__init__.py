"""Vectorized batch kernels behind the ``engine`` knob.

The streaming generator is already columnar, but the packet-level
subsystems (flow meter, DPI sniffers, simulator event scheduling) run
per-packet python loops. This package provides numpy batch kernels
for those hot paths, selected by ``engine="vectorized"``; the
per-packet python implementations stay the *determinism oracle* — a
kernel either produces bit-identical observable state or detects the
shapes it cannot handle and falls back to the oracle before mutating
anything, so ``--engine`` can never change a digest.

Modules
-------
``repro.kernels.sniff``
    Batch protocol sniffers over a payload-prefix matrix, mirroring
    ``repro.protocols.{tls,dns,http,quic,rtp}.looks_like_*`` byte for
    byte.
``repro.kernels.flow``
    ``process_packet_batch`` — the batched flow-metering kernel used
    by :class:`repro.flowmeter.meter.FlowMeter` when constructed with
    ``engine="vectorized"``.

The engine knob is *execution policy, not content*: scenario digests
exclude it, and every test that sweeps engines asserts digest
equality against the python path.
"""

from __future__ import annotations

#: The recognised execution engines, in oracle-first order.
ENGINES = ("python", "vectorized")


def resolve_engine(engine: str) -> str:
    """Validate an ``engine`` knob value and return its canonical form.

    Accepts the names in :data:`ENGINES` (case-insensitive, stripped);
    anything else raises ``ValueError`` naming the valid choices so a
    typo fails at configuration time, not mid-capture.
    """
    if not isinstance(engine, str):
        raise ValueError(f"engine must be a string, got {engine!r}")
    canonical = engine.strip().lower()
    if canonical not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return canonical
