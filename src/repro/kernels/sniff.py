"""Vectorized protocol sniffers.

Each ``batch_looks_like_*`` evaluates the corresponding
``repro.protocols.*.looks_like_*`` heuristic over a whole batch of
payloads at once, operating on the prefix matrix built by
:func:`payload_prefixes`. The kernels are byte-for-byte ports of the
scalar checks — ``tests/test_kernels.py`` sweeps random and crafted
payloads through both and asserts elementwise equality — so a batch
DPI pre-filter can never classify differently from the python oracle.

Padding is safe by construction: rows shorter than the matrix width
are zero-padded, every predicate first gates on the row's true length,
and none of the sentinel bytes the checks look for (TLS content types
20–23, ASCII space, the QUIC fixed bit, the RTP version bits) can be
produced by a zero pad inside the gated region.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.protocols import dns, http, quic, rtp, tls

#: Widest prefix any batch sniffer inspects: the DNS check reads the
#: 12-byte header and requires 5 more bytes of question section.
PREFIX_WIDTH = dns._HEADER.size + 5

_HTTP_METHODS = (
    b"GET",
    b"POST",
    b"PUT",
    b"HEAD",
    b"DELETE",
    b"OPTIONS",
    b"CONNECT",
    b"PATCH",
)


def payload_prefixes(
    payloads: Sequence[bytes], width: int = PREFIX_WIDTH
) -> "tuple[np.ndarray, np.ndarray]":
    """Pack payload prefixes into a zero-padded ``(N, width)`` uint8
    matrix, returning ``(prefixes, lengths)`` where ``lengths`` holds
    each payload's *full* byte length (not the truncated prefix)."""
    n = len(payloads)
    # One padded join + frombuffer instead of n row assignments: the
    # per-row numpy dispatch otherwise dominates and makes the batch
    # path slower than the scalar loop it is meant to beat.
    packed = b"".join(data[:width].ljust(width, b"\x00") for data in payloads)
    prefixes = np.frombuffer(packed, dtype=np.uint8).reshape(n, width)
    lengths = np.fromiter(
        (len(data) for data in payloads), dtype=np.int64, count=n
    )
    return prefixes, lengths


def batch_looks_like_tls(prefixes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vector form of :func:`repro.protocols.tls.looks_like_tls`."""
    ctype = prefixes[:, 0]
    return (
        (lengths >= tls._RECORD_HEADER.size)
        & (ctype >= 20)
        & (ctype <= 23)
        & (prefixes[:, 1] == 3)
    )


def batch_looks_like_dns(prefixes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vector form of :func:`repro.protocols.dns.looks_like_dns`."""
    wide = prefixes.astype(np.int64)
    flags = (wide[:, 2] << 8) | wide[:, 3]
    qdcount = (wide[:, 4] << 8) | wide[:, 5]
    opcode = (flags >> 11) & 0xF
    return (
        (lengths >= dns._HEADER.size + 5)
        & (opcode == 0)
        & (qdcount >= 1)
        & (qdcount <= 4)
    )


def batch_looks_like_http(prefixes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vector form of :func:`repro.protocols.http.looks_like_http`.

    The scalar check takes the token before the first space in the
    first 8 bytes; zero padding cannot fake a space, and a pad byte at
    a method's length is excluded by comparing the token length."""
    window = prefixes[:, :8]
    is_space = window == 0x20
    has_space = is_space.any(axis=1)
    token_len = np.where(
        has_space, is_space.argmax(axis=1), np.minimum(lengths, 8)
    )
    match = np.zeros(len(lengths), dtype=bool)
    for method in _HTTP_METHODS:
        size = len(method)
        pattern = np.frombuffer(method, dtype=np.uint8)
        match |= (token_len == size) & (window[:, :size] == pattern).all(axis=1)
    return match


def batch_looks_like_quic(prefixes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vector form of :func:`repro.protocols.quic.looks_like_quic`."""
    flags = prefixes[:, 0].astype(np.int64)
    wide = prefixes.astype(np.int64)
    version = (wide[:, 1] << 24) | (wide[:, 2] << 16) | (wide[:, 3] << 8) | wide[:, 4]
    fixed = (flags & quic._FIXED_BIT) != 0
    long_form = (flags & quic._LONG_HEADER_FORM) != 0
    return (lengths >= 5) & fixed & (~long_form | (version == quic.QUIC_VERSION_1))


def batch_looks_like_rtp(prefixes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vector form of :func:`repro.protocols.rtp.looks_like_rtp`."""
    return (lengths >= rtp.HEADER_LEN) & ((prefixes[:, 0] >> 6) == rtp._RTP_VERSION)


#: Scalar oracles in matrix-column order, for equivalence tests.
SCALAR_ORACLES = {
    "tls": tls.looks_like_tls,
    "dns": dns.looks_like_dns,
    "http": http.looks_like_http,
    "quic": quic.looks_like_quic,
    "rtp": rtp.looks_like_rtp,
}

BATCH_SNIFFERS = {
    "tls": batch_looks_like_tls,
    "dns": batch_looks_like_dns,
    "http": batch_looks_like_http,
    "quic": batch_looks_like_quic,
    "rtp": batch_looks_like_rtp,
}


def sniff_matrix(payloads: Sequence[bytes]) -> "dict[str, np.ndarray]":
    """Run every batch sniffer over ``payloads`` in one pass.

    Convenience wrapper for benchmarks and pre-filters; builds the
    prefix matrix once and reuses it across all five predicates."""
    prefixes, lengths = payload_prefixes(payloads)
    return {
        name: sniffer(prefixes, lengths) for name, sniffer in BATCH_SNIFFERS.items()
    }
