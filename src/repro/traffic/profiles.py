"""Per-country population profiles.

Encodes the population properties the paper *measured* and we use as
generator inputs (see DESIGN.md §2): customer share per country
(Figure 2), subscriber-type mix (idle CPE / household / community WiFi
AP — Sections 4–5), local-time diurnal activity (Figure 4), the
service-adoption matrix (Figure 6), per-category usage intensity
(Figure 7), and the resolver mix (Figure 10, via
:mod:`repro.internet.resolvers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from repro.internet.geo import COUNTRIES, Location, lon_hour_shift
from repro.traffic.services import SERVICES, ServiceCategory

# --------------------------------------------------------------------------
# Customer share per country (percent of the subscriber base, Figure 2).
# --------------------------------------------------------------------------

CUSTOMER_SHARE_PCT: Dict[str, float] = {
    "Congo": 20.0,
    "Spain": 16.0,
    "Nigeria": 11.0,
    "UK": 8.5,
    "South Africa": 7.5,
    "Ireland": 6.5,
    "Germany": 6.0,
    "France": 5.0,
    "Italy": 4.5,
    "Portugal": 3.5,
}
_remaining = [name for name in COUNTRIES if name not in CUSTOMER_SHARE_PCT]
_leftover = 100.0 - sum(CUSTOMER_SHARE_PCT.values())
for _name in _remaining:
    CUSTOMER_SHARE_PCT[_name] = _leftover / len(_remaining)

TOP_COUNTRIES: Tuple[str, ...] = ("Congo", "Nigeria", "South Africa", "Ireland", "Spain", "UK")
"""The three African + three European countries the paper drills into."""


# --------------------------------------------------------------------------
# Subscriber-type mixes. "Idle" CPEs (second homes, Section 4) dominate in
# Europe; community WiFi APs / internet cafés are an African phenomenon
# (Section 5).
# --------------------------------------------------------------------------

#: (idle, household, community) probabilities.
TYPE_MIX: Dict[str, Tuple[float, float, float]] = {
    "Congo": (0.06, 0.50, 0.44),
    "Nigeria": (0.08, 0.55, 0.37),
    "South Africa": (0.12, 0.60, 0.28),
    "Ireland": (0.55, 0.44, 0.01),
    "Spain": (0.58, 0.41, 0.01),
    "UK": (0.53, 0.46, 0.01),
}
_TYPE_MIX_DEFAULT = {"Europe": (0.55, 0.44, 0.01), "Africa": (0.08, 0.55, 0.37)}


# --------------------------------------------------------------------------
# Figure 6: percentage of customers accessing each service daily.
# --------------------------------------------------------------------------

FIG6_ADOPTION_PCT: Dict[str, Dict[str, float]] = {
    "Google":     {"Congo": 62.96, "Nigeria": 61.26, "South Africa": 64.72, "Ireland": 68.58, "Spain": 68.30, "UK": 65.48},
    "Whatsapp":   {"Congo": 61.22, "Nigeria": 51.18, "South Africa": 62.88, "Ireland": 59.59, "Spain": 63.82, "UK": 53.75},
    "Snapchat":   {"Congo": 33.93, "Nigeria": 28.90, "South Africa": 19.14, "Ireland": 38.52, "Spain": 12.33, "UK": 28.50},
    "Wechat":     {"Congo": 6.42, "Nigeria": 3.55, "South Africa": 1.11, "Ireland": 0.49, "Spain": 0.06, "UK": 0.41},
    "Telegram":   {"Congo": 1.83, "Nigeria": 3.17, "South Africa": 1.28, "Ireland": 0.53, "Spain": 1.75, "UK": 0.29},
    "Instagram":  {"Congo": 48.81, "Nigeria": 41.04, "South Africa": 40.67, "Ireland": 48.53, "Spain": 45.59, "UK": 40.43},
    "Tiktok":     {"Congo": 41.56, "Nigeria": 31.99, "South Africa": 36.31, "Ireland": 40.11, "Spain": 31.89, "UK": 36.53},
    "Netflix":    {"Congo": 17.34, "Nigeria": 17.84, "South Africa": 38.91, "Ireland": 50.91, "Spain": 39.20, "UK": 46.41},
    "Primevideo": {"Congo": 3.90, "Nigeria": 3.77, "South Africa": 8.42, "Ireland": 21.30, "Spain": 22.78, "UK": 28.21},
    "Sky":        {"Congo": 15.71, "Nigeria": 7.86, "South Africa": 7.26, "Ireland": 27.68, "Spain": 6.04, "UK": 28.37},
    "Spotify":    {"Congo": 37.78, "Nigeria": 30.31, "South Africa": 33.19, "Ireland": 46.79, "Spain": 45.20, "UK": 39.73},
    "Dropbox":    {"Congo": 11.50, "Nigeria": 9.22, "South Africa": 16.57, "Ireland": 10.39, "Spain": 9.34, "UK": 16.81},
}

#: Daily-use probabilities (percent) for services the paper does not list
#: in Figure 6, as (Europe default, Africa default).
_DEFAULT_ADOPTION_PCT: Dict[str, Tuple[float, float]] = {
    "Bing": (20.0, 10.0),
    "Yahoo": (12.0, 8.0),
    "Duckduck": (5.0, 2.0),
    "Skype": (10.0, 6.0),
    "Facebook": (65.0, 72.0),
    "Twitter": (25.0, 15.0),
    "Linkedin": (15.0, 8.0),
    "Youtube": (70.0, 75.0),
    "Office365": (30.0, 12.0),
    "Gsuite": (25.0, 15.0),
    "AppleServices": (45.0, 15.0),
    "GoogleAPIs": (85.0, 82.0),
    "Microsoft": (60.0, 25.0),
    "WindowsUpdate": (35.0, 10.0),
    "AdsTracking": (90.0, 85.0),
    "GenericWeb": (95.0, 95.0),
    "ChinesePlatforms": (1.0, 4.0),
    "ScooperNews": (0.3, 25.0),
    "Shalltry": (0.2, 18.0),
    "AfricanLocal": (0.5, 40.0),
    "UsSaaS": (55.0, 22.0),
    "UsWestApps": (24.0, 9.0),
    "Vpn": (6.0, 2.0),
    "RtpCalls": (10.0, 12.0),
    "OtherUdp": (60.0, 55.0),
}

#: Country-specific overrides for unlisted services: German VPN usage
#: (Figure 3's 35 % other-TCP), Chinese platforms in Congo (Section 6.3),
#: Sky driving HTTP in Ireland/U.K. (already in Figure 6).
_ADOPTION_OVERRIDES: Dict[str, Dict[str, float]] = {
    "Vpn": {"Germany": 32.0, "France": 9.0},
    "ChinesePlatforms": {"Congo": 9.0, "Nigeria": 4.0, "South Africa": 2.5},
    "WindowsUpdate": {"Ireland": 55.0, "UK": 55.0},
    "ScooperNews": {"Congo": 30.0, "Nigeria": 28.0},
    "AfricanLocal": {"Congo": 45.0, "Nigeria": 42.0, "South Africa": 35.0},
}


# --------------------------------------------------------------------------
# Figure 7: per-category volume intensity (household baseline = Europe).
# --------------------------------------------------------------------------

_CATEGORY_INTENSITY: Dict[str, Dict[ServiceCategory, float]] = {
    "Congo": {
        ServiceCategory.CHAT: 7.0, ServiceCategory.SOCIAL: 4.5,
        ServiceCategory.VIDEO: 0.8, ServiceCategory.AUDIO: 0.35,
        ServiceCategory.WORK: 1.1, ServiceCategory.SEARCH: 1.3,
        ServiceCategory.OTHER: 1.1,
    },
    "Nigeria": {
        ServiceCategory.CHAT: 4.5, ServiceCategory.SOCIAL: 2.4,
        ServiceCategory.VIDEO: 0.7, ServiceCategory.AUDIO: 0.4,
        ServiceCategory.WORK: 1.0, ServiceCategory.SEARCH: 1.2,
        ServiceCategory.OTHER: 1.3,
    },
    "South Africa": {
        ServiceCategory.CHAT: 3.2, ServiceCategory.SOCIAL: 2.2,
        ServiceCategory.VIDEO: 0.8, ServiceCategory.AUDIO: 0.5,
        ServiceCategory.WORK: 1.0, ServiceCategory.SEARCH: 1.1,
        ServiceCategory.OTHER: 1.2,
    },
}
_INTENSITY_DEFAULT = {
    "Europe": {category: 1.0 for category in ServiceCategory},
    "Africa": {
        ServiceCategory.CHAT: 4.5, ServiceCategory.SOCIAL: 2.5,
        ServiceCategory.VIDEO: 0.7, ServiceCategory.AUDIO: 0.4,
        ServiceCategory.WORK: 1.0, ServiceCategory.SEARCH: 1.1,
        ServiceCategory.OTHER: 1.3,
    },
}
_INTENSITY_DEFAULT["Europe"][ServiceCategory.AUDIO] = 1.5
_INTENSITY_DEFAULT["Europe"][ServiceCategory.VIDEO] = 1.8
_INTENSITY_DEFAULT["Europe"][ServiceCategory.WORK] = 1.5
_INTENSITY_DEFAULT["Europe"][ServiceCategory.OTHER] = 1.8


# --------------------------------------------------------------------------
# Figure 4: diurnal activity (local time).
# --------------------------------------------------------------------------

def _bump(hours: np.ndarray, peak: float, width: float) -> np.ndarray:
    """Gaussian bump over the 24 h circle."""
    distance = ((hours - peak + 12.0) % 24.0) - 12.0
    return np.exp(-(distance**2) / (2.0 * width**2))


def _diurnal_weights(continent: str, country: str) -> np.ndarray:
    hours = np.arange(24, dtype=float)
    if continent == "Africa":
        morning_amp, evening_amp = (1.25, 0.85) if country == "Congo" else (0.97, 1.0)
        shape = (
            0.40
            + morning_amp * _bump(hours, 10.0, 3.2)
            + evening_amp * _bump(hours, 19.0, 2.6)
        )
    else:
        shape = 0.18 + 0.50 * _bump(hours, 13.0, 4.0) + 1.0 * _bump(hours, 19.5, 2.2)
    return shape / shape.sum()


# --------------------------------------------------------------------------
# Profile assembly.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CountryProfile:
    """Everything the generator needs to know about one country."""

    name: str
    location: Location
    customer_share: float
    type_mix: Tuple[float, float, float]
    hourly_weights_local: np.ndarray
    adoption_pct: Dict[str, float]
    category_intensity: Dict[ServiceCategory, float]

    @property
    def continent(self) -> str:
        return self.location.continent

    def utc_hour_weights(self) -> np.ndarray:
        """Hourly activity re-indexed to UTC (Figure 4's x-axis)."""
        shift = int(round(lon_hour_shift(self.location)))
        weights = np.empty(24)
        for hour_utc in range(24):
            weights[hour_utc] = self.hourly_weights_local[(hour_utc + shift) % 24]
        return weights / weights.sum()


def _adoption_for(country: str, continent: str) -> Dict[str, float]:
    adoption: Dict[str, float] = {}
    for name in SERVICES:
        if name in FIG6_ADOPTION_PCT:
            by_country = FIG6_ADOPTION_PCT[name]
            if country in by_country:
                adoption[name] = by_country[country]
            else:
                pool = [
                    pct for c, pct in by_country.items()
                    if COUNTRIES[c].continent == continent
                ]
                adoption[name] = float(np.mean(pool))
            continue
        europe_default, africa_default = _DEFAULT_ADOPTION_PCT[name]
        value = africa_default if continent == "Africa" else europe_default
        value = _ADOPTION_OVERRIDES.get(name, {}).get(country, value)
        adoption[name] = value
    return adoption


@lru_cache(maxsize=None)
def country_profile(name: str) -> CountryProfile:
    """Build (and cache) the profile for one subscriber country."""
    location = COUNTRIES[name]
    continent = location.continent
    return CountryProfile(
        name=name,
        location=location,
        customer_share=CUSTOMER_SHARE_PCT[name] / 100.0,
        type_mix=TYPE_MIX.get(name, _TYPE_MIX_DEFAULT[continent]),
        hourly_weights_local=_diurnal_weights(continent, name),
        adoption_pct=_adoption_for(name, continent),
        category_intensity=dict(
            _CATEGORY_INTENSITY.get(name, _INTENSITY_DEFAULT[continent])
        ),
    )


def all_profiles() -> Dict[str, CountryProfile]:
    """Profiles for every subscriber country."""
    return {name: country_profile(name) for name in COUNTRIES}
