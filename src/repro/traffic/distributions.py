"""Typed, samplable distributions for the traffic model.

Every hard-coded ``rng.lognormal(...)`` draw scattered through
:mod:`repro.traffic.workload` / :mod:`repro.traffic.services` is an
instance of one of the distributions below. Each is a frozen dataclass
with three capabilities:

* ``sample(rng, n)`` — draw ``n`` variates from ``rng``. For the
  distributions the generator was already using the expressions are
  kept *bit-identical* to the legacy inline draws (same RNG stream
  consumption, same float expression structure), so migrating a call
  site never moves a capture digest.
* ``params()`` — a JSON-ready payload for scenario digests.
* ``spec()`` / :func:`parse_spec` — a compact round-trippable string
  form (``lognormal(12.4,1.8)``) so scenarios can override any draw
  from TOML or ``--set``.

Bit-identity rules the implementations rely on (and tests pin):
``1.0 * x`` is a bitwise identity for every float ``x``, and IEEE
elementwise multiplication is commutative — but NOT associative, so
``sample`` bodies preserve the exact grouping of the legacy
expressions they replace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np


class DistributionError(ValueError):
    """A distribution spec failed to parse or validate."""


def _fmt(x: float) -> str:
    """Shortest float form that round-trips through ``float()``."""
    return repr(float(x))


@dataclass(frozen=True)
class LogNormal:
    """``median * exp(sigma * N(0,1))`` — the generator's workhorse.

    ``sample`` is expression-identical to the legacy
    ``median * rng.lognormal(0.0, sigma, n)`` inline draws, so any
    call site migrated onto it keeps its capture bit-identical.
    """

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if not self.median > 0:
            raise DistributionError(f"lognormal median must be > 0, got {self.median}")
        if not self.sigma >= 0:
            raise DistributionError(f"lognormal sigma must be >= 0, got {self.sigma}")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.median * rng.lognormal(0.0, self.sigma, n)

    def mean(self) -> float:
        return float(self.median * np.exp(self.sigma**2 / 2.0))

    def params(self) -> Dict[str, object]:
        return {"kind": "lognormal", "median": float(self.median), "sigma": float(self.sigma)}

    def spec(self) -> str:
        return f"lognormal({_fmt(self.median)},{_fmt(self.sigma)})"


@dataclass(frozen=True)
class Pareto:
    """Lomax-style heavy tail: ``scale * (1 + Pareto(alpha))``."""

    scale: float
    alpha: float

    def __post_init__(self) -> None:
        if not self.scale > 0:
            raise DistributionError(f"pareto scale must be > 0, got {self.scale}")
        if not self.alpha > 0:
            raise DistributionError(f"pareto alpha must be > 0, got {self.alpha}")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * (1.0 + rng.pareto(self.alpha, n))

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return float("inf")
        return float(self.scale * self.alpha / (self.alpha - 1.0))

    def params(self) -> Dict[str, object]:
        return {"kind": "pareto", "scale": float(self.scale), "alpha": float(self.alpha)}

    def spec(self) -> str:
        return f"pareto({_fmt(self.scale)},{_fmt(self.alpha)})"


@dataclass(frozen=True)
class Weibull:
    """``scale * Weibull(shape)`` — session-duration shaped."""

    scale: float
    shape: float

    def __post_init__(self) -> None:
        if not self.scale > 0:
            raise DistributionError(f"weibull scale must be > 0, got {self.scale}")
        if not self.shape > 0:
            raise DistributionError(f"weibull shape must be > 0, got {self.shape}")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, n)

    def mean(self) -> float:
        from math import gamma

        return float(self.scale * gamma(1.0 + 1.0 / self.shape))

    def params(self) -> Dict[str, object]:
        return {"kind": "weibull", "scale": float(self.scale), "shape": float(self.shape)}

    def spec(self) -> str:
        return f"weibull({_fmt(self.scale)},{_fmt(self.shape)})"


@dataclass(frozen=True)
class EmpiricalCDF:
    """Inverse-CDF sampling from tabulated (value, cdf) breakpoints.

    Generalizes the CDF→PDF ``np.random.choice`` sampler pattern:
    the PDF is the successive difference of the CDF column and draws
    pick among the tabulated values with those probabilities.
    ``cdf`` must be non-decreasing and end at 1.0 (the first entry's
    probability is its own CDF value).
    """

    values: Tuple[float, ...]
    cdf: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.cdf) or not self.values:
            raise DistributionError("empirical needs equal, nonzero values/cdf lengths")
        c = np.asarray(self.cdf, dtype=np.float64)
        if np.any(np.diff(c) < 0) or not (0.0 <= c[0] <= 1.0):
            raise DistributionError("empirical cdf must be non-decreasing in [0, 1]")
        if abs(c[-1] - 1.0) > 1e-9:
            raise DistributionError(f"empirical cdf must end at 1.0, got {c[-1]}")

    def _pdf(self) -> np.ndarray:
        c = np.asarray(self.cdf, dtype=np.float64)
        pdf = np.diff(c, prepend=0.0)
        pdf = np.maximum(pdf, 0.0)
        return pdf / pdf.sum()

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        vals = np.asarray(self.values, dtype=np.float64)
        return vals[rng.choice(len(vals), size=n, p=self._pdf())]

    def mean(self) -> float:
        vals = np.asarray(self.values, dtype=np.float64)
        return float(np.sum(vals * self._pdf()))

    def cdf_at(self, x: np.ndarray) -> np.ndarray:
        """P(X <= x) of the discrete distribution (for KS tests)."""
        vals = np.asarray(self.values, dtype=np.float64)
        c = np.asarray(self.cdf, dtype=np.float64)
        idx = np.searchsorted(vals, np.asarray(x, dtype=np.float64), side="right")
        out = np.zeros(np.shape(x), dtype=np.float64)
        nz = idx > 0
        out[nz] = c[idx[nz] - 1]
        return out

    def params(self) -> Dict[str, object]:
        return {
            "kind": "empirical",
            "values": [float(v) for v in self.values],
            "cdf": [float(c) for c in self.cdf],
        }

    def spec(self) -> str:
        pairs = ",".join(f"{_fmt(v)}:{_fmt(c)}" for v, c in zip(self.values, self.cdf))
        return f"empirical({pairs})"


@dataclass(frozen=True)
class Mixture:
    """Weighted mixture of component distributions.

    ``sample`` draws one uniform per variate to pick the component,
    *then* draws the component variates — matching the legacy binge
    draw order (``rng.random`` before ``rng.lognormal``). When every
    component is a :class:`LogNormal` with one common sigma, a single
    shared ``rng.lognormal(0, sigma, n)`` base draw is scaled by the
    selected component's median — bitwise-equal to the legacy
    ``base * np.where(binge, 8.0, 1.0)`` expression (elementwise IEEE
    multiply is commutative). Heterogeneous mixtures draw one batch
    per component and select, which consumes ``k * n`` variates.

    ``first_weight`` lets a two-component mixture override the first
    component's selection probability per element — how the workload
    threads the per-subscriber-type binge probability through.
    """

    components: Tuple[object, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.components) != len(self.weights) or len(self.components) < 2:
            raise DistributionError("mixture needs >= 2 components with matching weights")
        if any(not w > 0 for w in self.weights):
            raise DistributionError(f"mixture weights must be > 0, got {self.weights}")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise DistributionError(f"mixture weights must sum to 1, got {sum(self.weights)}")

    def _common_sigma(self) -> Optional[float]:
        if all(isinstance(c, LogNormal) for c in self.components):
            sigmas = {c.sigma for c in self.components}
            if len(sigmas) == 1:
                return self.components[0].sigma
        return None

    def sample(
        self,
        rng: np.random.Generator,
        n: int,
        first_weight: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        u = rng.random(n)
        if first_weight is not None:
            if len(self.components) != 2:
                raise DistributionError("first_weight override needs exactly 2 components")
            idx = np.where(u < first_weight, 0, 1)
        else:
            idx = np.searchsorted(np.cumsum(self.weights), u, side="right")
            idx = np.minimum(idx, len(self.components) - 1)
        sigma = self._common_sigma()
        if sigma is not None:
            base = rng.lognormal(0.0, sigma, n)
            medians = np.array([c.median for c in self.components], dtype=np.float64)
            return base * medians[idx]
        draws = np.stack([c.sample(rng, n) for c in self.components])
        return draws[idx, np.arange(n)]

    def mean(self) -> float:
        return float(sum(w * c.mean() for w, c in zip(self.weights, self.components)))

    def params(self) -> Dict[str, object]:
        return {
            "kind": "mixture",
            "weights": [float(w) for w in self.weights],
            "components": [c.params() for c in self.components],
        }

    def spec(self) -> str:
        parts = ",".join(
            f"{_fmt(w)}*{c.spec()}" for w, c in zip(self.weights, self.components)
        )
        return f"mixture({parts})"


Distribution = Union[LogNormal, Pareto, Weibull, EmpiricalCDF, Mixture]


_SIMPLE_SPEC = re.compile(r"^([a-z]+)\((.*)\)$")


def _split_args(body: str) -> List[str]:
    """Split on top-level commas (mixture components nest parens)."""
    parts: List[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(body):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise DistributionError(f"unbalanced parens in {body!r}")
        elif ch == "," and depth == 0:
            parts.append(body[start:i])
            start = i + 1
    if depth != 0:
        raise DistributionError(f"unbalanced parens in {body!r}")
    parts.append(body[start:])
    return [p.strip() for p in parts if p.strip()]


def _float(token: str, spec: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise DistributionError(f"bad number {token!r} in spec {spec!r}") from None


def parse_spec(spec: str) -> Distribution:
    """Parse a spec string (``lognormal(12.4,1.8)``) to a distribution.

    Inverse of each distribution's ``spec()``: for every supported
    family ``parse_spec(d.spec()) == d`` and re-serializing yields the
    same canonical string.
    """
    text = spec.strip().replace(" ", "")
    m = _SIMPLE_SPEC.match(text)
    if not m:
        raise DistributionError(f"unparseable distribution spec {spec!r}")
    kind, body = m.group(1), m.group(2)
    args = _split_args(body)
    try:
        if kind == "lognormal":
            if len(args) != 2:
                raise DistributionError(f"lognormal takes 2 args, got {len(args)}")
            return LogNormal(_float(args[0], spec), _float(args[1], spec))
        if kind == "pareto":
            if len(args) != 2:
                raise DistributionError(f"pareto takes 2 args, got {len(args)}")
            return Pareto(_float(args[0], spec), _float(args[1], spec))
        if kind == "weibull":
            if len(args) != 2:
                raise DistributionError(f"weibull takes 2 args, got {len(args)}")
            return Weibull(_float(args[0], spec), _float(args[1], spec))
        if kind == "empirical":
            values: List[float] = []
            cdf: List[float] = []
            for pair in args:
                if ":" not in pair:
                    raise DistributionError(f"empirical pairs are value:cdf, got {pair!r}")
                v, c = pair.split(":", 1)
                values.append(_float(v, spec))
                cdf.append(_float(c, spec))
            return EmpiricalCDF(tuple(values), tuple(cdf))
        if kind == "mixture":
            weights: List[float] = []
            comps: List[Distribution] = []
            for part in args:
                if "*" not in part:
                    raise DistributionError(
                        f"mixture components are weight*spec, got {part!r}"
                    )
                w, comp = part.split("*", 1)
                weights.append(_float(w, spec))
                comps.append(parse_spec(comp))
            return Mixture(tuple(comps), tuple(weights))
    except DistributionError:
        raise
    raise DistributionError(f"unknown distribution kind {kind!r} in {spec!r}")


#: The legacy day-factor expression as a mixture: binge days scale a
#: customer-day's flow sizes by 8x around the same sigma-0.5 noise.
DAY_FACTOR_BINGE = Mixture(
    components=(LogNormal(8.0, 0.5), LogNormal(1.0, 0.5)),
    weights=(0.035, 0.965),
)

#: Unit-median noise: multiplying by its samples is bitwise-equal to
#: multiplying by the bare ``rng.lognormal(0, sigma, n)`` draw.
def unit_lognormal(sigma: float) -> LogNormal:
    return LogNormal(1.0, sigma)
