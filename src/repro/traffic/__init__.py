"""Synthetic subscriber populations and workloads.

Calibrated to the paper's published population aggregates (country mix,
service adoption of Figure 6, resolver mix of Figure 10, diurnal curves
of Figure 4) — the *analysis* pipeline then has to re-measure those
properties from the generated flows, exercising the same code paths the
paper ran over real traces.
"""

from repro.traffic.services import (
    SERVICES,
    Service,
    ServiceCategory,
    service,
)
from repro.traffic.profiles import CountryProfile, country_profile
from repro.traffic.subscribers import Population, Subscriber, SubscriberType, synthesize_population
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

__all__ = [
    "SERVICES",
    "Service",
    "ServiceCategory",
    "service",
    "CountryProfile",
    "country_profile",
    "Population",
    "Subscriber",
    "SubscriberType",
    "synthesize_population",
    "WorkloadConfig",
    "WorkloadGenerator",
]
