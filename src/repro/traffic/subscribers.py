"""Population synthesis.

Draws a subscriber base matching the paper's aggregates: the country
mix of Figure 2, the subscriber-type mix behind Figures 5 and 7 (idle
CPEs in Europe, community WiFi APs in Africa), continent-typical plan
adoption (Section 6.5), per-customer resolver preference (Figure 10),
and per-customer service adoption (Figure 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.internet.geo import COUNTRIES
from repro.internet.resolvers import ResolverCatalog
from repro.satcom.beams import BeamMap, build_default_beam_map
from repro.satcom.plans import PLAN_MIX_BY_CONTINENT, PLANS
from repro.traffic.profiles import CountryProfile, country_profile
from repro.traffic.services import SERVICES


class SubscriberType(enum.IntEnum):
    """Who sits behind a CPE (Sections 4–5)."""

    IDLE = 0
    """Equipment left connected but unused (second homes in Europe)."""
    HOUSEHOLD = 1
    """A family or small office."""
    COMMUNITY = 2
    """A community WiFi AP / internet café multiplexing many users."""


#: Daily-usage multiplier for idle CPEs: a phone or two stays attached
#: to the WiFi of a mostly-unused subscription, so popular apps still
#: appear (the paper's Figure 6 rates hold across the whole customer
#: base even though >50 % of European customers are under the 250-flow
#: activity knee).
IDLE_USE_FACTOR = 0.85


@dataclass
class Subscriber:
    """One synthetic customer."""

    customer_id: int
    country: str
    subscriber_type: SubscriberType
    plan_name: str
    beam_id: str
    beam_peak_utilization: float
    beam_pep_load: float
    resolver_name: str
    volume_multiplier: float
    flow_multiplier: float
    daily_use_prob: Dict[str, float]

    @property
    def plan_down_mbps(self) -> float:
        return PLANS[self.plan_name].down_mbps


@dataclass
class Population:
    """The synthesized subscriber base."""

    subscribers: List[Subscriber]

    def __len__(self) -> int:
        return len(self.subscribers)

    def by_country(self) -> Dict[str, List[Subscriber]]:
        out: Dict[str, List[Subscriber]] = {}
        for sub in self.subscribers:
            out.setdefault(sub.country, []).append(sub)
        return out

    def count_by_type(self) -> Dict[SubscriberType, int]:
        counts = {t: 0 for t in SubscriberType}
        for sub in self.subscribers:
            counts[sub.subscriber_type] += 1
        return counts


def _choose_plan(
    continent: str,
    rng: np.random.Generator,
    plan_mix: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    mix = (plan_mix or PLAN_MIX_BY_CONTINENT)[continent]
    names = list(mix)
    weights = np.array([mix[n] for n in names])
    return names[rng.choice(len(names), p=weights / weights.sum())]


def _daily_use_probs(
    profile: CountryProfile,
    subscriber_type: SubscriberType,
    rng: np.random.Generator,
) -> Dict[str, float]:
    """Per-service daily usage probability for one subscriber.

    Calibrated so the *population-level* daily usage matches the
    Figure 6 matrix: community APs (many users) touch adopted services
    almost daily, idle CPEs rarely, and the household rate is solved
    from the country's type mix so the expectation lands on the
    published percentage. Each subscriber still *adopts* a service
    first (Bernoulli) so per-customer behaviour is consistent across
    days.
    """
    idle_share, house_share, comm_share = profile.type_mix
    probs: Dict[str, float] = {}
    for name in SERVICES:
        p = profile.adoption_pct[name] / 100.0
        p_comm = min(0.98, 1.8 * p)
        p_idle = IDLE_USE_FACTOR * p
        p_house = (p - comm_share * p_comm - idle_share * p_idle) / max(house_share, 1e-9)
        p_house = float(np.clip(p_house, 0.02 * p, 0.95))
        if subscriber_type == SubscriberType.COMMUNITY:
            p_type = p_comm
        elif subscriber_type == SubscriberType.HOUSEHOLD:
            p_type = p_house
        else:
            p_type = p_idle
        p_adopt = min(1.0, 1.4 * p_type)
        if p_adopt > 0 and rng.random() < p_adopt:
            probs[name] = min(1.0, p_type / p_adopt)
    return probs


def synthesize_population(
    n_customers: int,
    rng: np.random.Generator,
    countries: Optional[Sequence[str]] = None,
    beam_map: Optional[BeamMap] = None,
    resolver_catalog: Optional[ResolverCatalog] = None,
    plan_mix: Optional[Dict[str, Dict[str, float]]] = None,
) -> Population:
    """Draw ``n_customers`` subscribers.

    ``countries`` restricts the population (weights renormalized); by
    default all covered countries appear with their Figure 2 shares.
    ``plan_mix`` overrides the per-continent plan adoption (keys are
    continents, values plan→weight tables); with the default mix the
    draw sequence is bit-identical to the pre-scenario generator.
    """
    if n_customers <= 0:
        raise ValueError("n_customers must be positive")
    beam_map = beam_map or build_default_beam_map()
    catalog = resolver_catalog or ResolverCatalog()

    names = list(countries) if countries else list(COUNTRIES)
    shares = np.array([country_profile(name).customer_share for name in names])
    shares /= shares.sum()
    country_draw = rng.choice(len(names), size=n_customers, p=shares)

    per_country_index: Dict[str, int] = {}
    subscribers: List[Subscriber] = []
    for customer_id, idx in enumerate(country_draw, start=1):
        country = names[int(idx)]
        profile = country_profile(country)
        type_weights = np.array(profile.type_mix)
        sub_type = SubscriberType(
            int(rng.choice(3, p=type_weights / type_weights.sum()))
        )
        index = per_country_index.get(country, 0)
        per_country_index[country] = index + 1
        beam = beam_map.assign_beam(country, index)
        resolver_names, resolver_weights = catalog.names_and_weights(
            country, profile.continent
        )
        resolver = resolver_names[int(rng.choice(len(resolver_names), p=resolver_weights))]

        if sub_type == SubscriberType.COMMUNITY:
            volume_mult = float(3.5 * rng.lognormal(0.0, 0.70))
            flow_mult = 1.2 * volume_mult
        elif sub_type == SubscriberType.HOUSEHOLD:
            volume_mult = float(rng.lognormal(0.0, 0.90))
            flow_mult = max(0.3, volume_mult**0.5)
        else:
            volume_mult = 0.02
            flow_mult = 0.18

        subscribers.append(
            Subscriber(
                customer_id=customer_id,
                country=country,
                subscriber_type=sub_type,
                plan_name=_choose_plan(profile.continent, rng, plan_mix),
                beam_id=beam.beam_id,
                beam_peak_utilization=beam.peak_utilization,
                beam_pep_load=beam.pep_load,
                resolver_name=resolver,
                volume_multiplier=volume_mult,
                flow_multiplier=flow_mult,
                daily_use_prob=_daily_use_probs(profile, sub_type, rng),
            )
        )
    return Population(subscribers=subscribers)
