"""Session-structured video workload: ABR chunks and per-session QoE.

The paper's capture sees video only as flows, but shaping-plan
questions ("Watching Stars in Pixels") are really statements about
*sessions*: an adaptive-bitrate player fetching chunks against the
plan rate and the operator's video shaper, rebuffering when the
buffer runs dry and switching resolution with its throughput
estimate. :class:`VideoSessionModel` expands one sampled session
(capacity, duration) into a deterministic chunk schedule — the chunk
fetches run through the plan's :class:`TokenBucketShaper` — and
produces the three QoE metrics the fig12 report and the rollup's v4
bank aggregate: rebuffer ratio, mean resolution level, and resolution
switches.

The model itself consumes no RNG: all stochastic inputs (arrival
hour, session duration, effective capacity) are drawn upstream by the
workload generator from the per-(shard, window) streams, so sessions
stay bit-identical for any worker count or day partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.satcom.qos import video_session_shaper
from repro.traffic.distributions import Distribution, LogNormal, parse_spec


@dataclass(frozen=True)
class VideoQoeConfig:
    """Resolved knobs of the video session model (scenario ``traffic.qoe``)."""

    sessions_per_day: float = 0.6
    """Mean video sessions per customer-day (Poisson)."""
    chunk_s: float = 4.0
    """Media seconds per ABR chunk."""
    startup_chunks: int = 3
    """Chunks buffered before playback starts (and after a stall)."""
    max_buffer_s: float = 30.0
    """Player buffer cap: downloads pause when the buffer is full."""
    ladder_mbps: Tuple[float, ...] = (1.0, 2.5, 4.0, 8.0, 16.0)
    """Bitrate ladder, ascending (level index = position)."""
    duration: Distribution = LogNormal(900.0, 0.8)
    """Session duration distribution (seconds)."""
    shape_bps: Optional[float] = None
    """Operator video shaping rate (None = unshaped)."""

    def __post_init__(self) -> None:
        if isinstance(self.duration, str):
            object.__setattr__(self, "duration", parse_spec(self.duration))


@dataclass(frozen=True)
class SessionResult:
    """One simulated session: its chunk schedule and QoE summary."""

    chunk_bytes: np.ndarray
    """Downlink bytes per chunk."""
    chunk_time_s: np.ndarray
    """Wall-clock download time per chunk (shaper delay included)."""
    start_offset_s: np.ndarray
    """Fetch start offset of each chunk from session start."""
    rebuffer_ratio: float
    """Stalled time (startup included) over stalled + played time."""
    mean_level: float
    """Mean ladder index across chunks."""
    switches: int
    """Number of resolution changes."""


class VideoSessionModel:
    """Expands sampled sessions into ABR chunk schedules with QoE."""

    #: ABR safety margin: pick the highest level sustainable at this
    #: fraction of the estimated throughput.
    ABR_MARGIN = 0.85
    #: EWMA weight of the newest chunk's throughput sample.
    ABR_GAIN = 0.2
    #: Hard cap on chunks per session (runtime guard).
    MAX_CHUNKS = 4000

    def __init__(self, config: Optional[VideoQoeConfig] = None) -> None:
        self.config = config or VideoQoeConfig()

    def simulate(self, capacity_bps: float, duration_s: float) -> SessionResult:
        """Deterministically play one session at ``capacity_bps``.

        The chunk loop models a throughput-driven ABR player: each
        chunk is fetched at the current ladder level, its download
        time comes from the link capacity plus the video shaper's
        token-bucket delay, playback consumes buffer in parallel, and
        the level for the next chunk follows an EWMA throughput
        estimate. Rebuffers re-enter the startup phase.
        """
        cfg = self.config
        capacity_bps = max(float(capacity_bps), 1.0)
        chunk_s = cfg.chunk_s
        n_chunks = min(max(1, int(np.ceil(duration_s / chunk_s))), self.MAX_CHUNKS)
        ladder_bps = [rate * 1e6 for rate in cfg.ladder_mbps]
        shaper = video_session_shaper(cfg.shape_bps)

        level = 0
        estimate = capacity_bps
        t = 0.0
        buffer_s = 0.0
        playing = False
        stalled = 0.0
        played = 0.0
        switches = 0
        level_sum = 0

        sizes = np.empty(n_chunks, dtype=np.float64)
        times = np.empty(n_chunks, dtype=np.float64)
        starts = np.empty(n_chunks, dtype=np.float64)

        for i in range(n_chunks):
            # a full buffer pauses fetching; playback drains meanwhile
            if playing and buffer_s + chunk_s > cfg.max_buffer_s:
                drain = buffer_s + chunk_s - cfg.max_buffer_s
                t += drain
                played += drain
                buffer_s -= drain
            starts[i] = t
            size = ladder_bps[level] * chunk_s / 8.0
            delay = shaper.delay_for(size, t) if shaper is not None else 0.0
            dl = size * 8.0 / capacity_bps + delay
            sizes[i] = size
            times[i] = dl
            level_sum += level

            if playing:
                consumed = min(buffer_s, dl)
                played += consumed
                stalled += dl - consumed
                buffer_s -= consumed
                if buffer_s <= 0.0:
                    playing = False  # stall: back to startup buffering
            else:
                stalled += dl
            t += dl
            buffer_s += chunk_s
            if not playing and buffer_s >= cfg.startup_chunks * chunk_s:
                playing = True

            tput = size * 8.0 / dl if dl > 0 else capacity_bps
            estimate += self.ABR_GAIN * (tput - estimate)
            target = 0
            for lvl, rate in enumerate(ladder_bps):
                if rate <= self.ABR_MARGIN * estimate:
                    target = lvl
            if target != level:
                switches += 1
                level = target

        played += buffer_s  # the tail of the buffer still plays out
        denom = stalled + played
        return SessionResult(
            chunk_bytes=sizes,
            chunk_time_s=times,
            start_offset_s=starts,
            rebuffer_ratio=float(stalled / denom) if denom > 0 else 0.0,
            mean_level=float(level_sum / n_chunks),
            switches=switches,
        )
