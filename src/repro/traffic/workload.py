"""Flow-level workload generation.

Produces a :class:`~repro.analysis.dataset.FlowFrame` of hundreds of
thousands of flows by composing the population (who), the service
catalog (what), the diurnal profiles (when), the internet model (where
the server is and what the DNS costs), and the SatCom delay/throughput
models (what performance the probe records). Everything is vectorized
per (country, service) batch.

The RTT/throughput columns are stamped with the *same* models the
packet-level simulator uses — DESIGN.md §2 explains why this preserves
the paper's observable shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import FlowFrame
from repro.constants import SECONDS_PER_DAY
from repro.internet.geo import COUNTRIES, SERVER_SITES, utc_hour
from repro.internet.resolvers import RESOLVERS, ResolverCatalog
from repro.internet.servers import SelectionPolicy, deployment
from repro.internet.topology import InternetModel
from repro.parallel import (
    ShardSpec,
    default_shard_count,
    generate_shards,
    plan_shards,
    resolve_workers,
)
from repro.satcom.beams import BeamMap, build_default_beam_map
from repro.satcom.delay_model import SatelliteRttModel
from repro.satcom.delaysource import DelaySource, StaticDelaySource
from repro.traffic.distributions import (
    DAY_FACTOR_BINGE,
    Distribution,
    Mixture,
    unit_lognormal,
)
from repro.traffic.profiles import country_profile
from repro.traffic.services import SERVICES, L7_ORDER, Service, ServiceCategory
from repro.traffic.sessions import VideoQoeConfig, VideoSessionModel
from repro.traffic.subscribers import (
    Population,
    SubscriberType,
    synthesize_population,
)
from repro.flowmeter.records import L7Protocol

_HTTPS_IDX = L7_ORDER.index(L7Protocol.HTTPS)
_DNS_IDX = L7_ORDER.index(L7Protocol.DNS)
_DOMAINS_PER_SERVICE = 24
_VIDEO_BITRATES_MBPS = np.array([2.5, 4.0, 8.0, 16.0])
# largest float32 below 24.0: hours sampled in [0, 24) as float64 can
# round up to exactly 24.0 when narrowed to float32
_HOUR_MAX_F4 = np.nextafter(np.float32(24.0), np.float32(0.0))


@dataclass
class TrafficModel:
    """Resolved traffic-model overrides threaded into the generator.

    The default instance reproduces the legacy hard-coded draws
    bit-for-bit: no per-service overrides, the binge day factor as a
    two-component :class:`Mixture`, and no video sessions. Scenarios
    build non-default instances from their digest-bearing ``traffic``
    section (:meth:`repro.scenario.Scenario.build_traffic_model`).
    """

    category_weights: Dict[ServiceCategory, float] = field(default_factory=dict)
    """Per-category flow-count multipliers (absent = 1.0, untouched)."""
    size_dists: Dict[str, Distribution] = field(default_factory=dict)
    """Per-service downlink flow-size overrides (bytes)."""
    flows_dists: Dict[str, Distribution] = field(default_factory=dict)
    """Per-service flows-per-active-day overrides (absolute counts)."""
    day_factor: Mixture = DAY_FACTOR_BINGE
    """Customer-day size multiplier; first component is the binge mode
    whose weight the per-subscriber-type binge probability overrides."""
    qoe: Optional[VideoQoeConfig] = None
    """Video session model (None = no sessions, zero extra draws)."""


@dataclass
class WorkloadConfig:
    """Knobs of the generator."""

    n_customers: int = 600
    days: int = 5
    seed: int = 7
    countries: Optional[Sequence[str]] = None
    flow_scale: float = 1.0
    """Uniformly scales per-customer flow counts (for quick runs)."""
    include_dns: bool = True
    dns_flows_per_day: float = 25.0
    """Mean DNS flows per household-day (scaled by flow multiplier)."""
    n_workers: Optional[int] = 1
    """Worker processes for generation: ``1`` serial, ``None``/``0``
    one per core. Never affects the generated flows, only wall-clock."""
    n_shards: Optional[int] = None
    """Customer shards (RNG streams). ``None`` derives the count from
    ``n_customers`` alone. Changing it changes the sampled flows, so it
    is part of the capture's cache identity — unlike ``n_workers``."""


class WorkloadGenerator:
    """Generates the synthetic capture the analysis pipeline consumes."""

    def __init__(
        self,
        config: Optional[WorkloadConfig] = None,
        internet: Optional[InternetModel] = None,
        rtt_model: Optional[SatelliteRttModel] = None,
        population: Optional[Population] = None,
        plan_mix: Optional[Dict[str, Dict[str, float]]] = None,
        delay_source: Optional[DelaySource] = None,
        traffic: Optional[TrafficModel] = None,
    ) -> None:
        self.config = config or WorkloadConfig()
        self.traffic = traffic or TrafficModel()
        self.rng = np.random.default_rng(self.config.seed)
        if delay_source is not None and rtt_model is not None:
            raise ValueError("pass delay_source or rtt_model, not both")
        if delay_source is None:
            if rtt_model is not None:
                # legacy entry point: a bare model is the static source
                delay_source = StaticDelaySource(rtt_model=rtt_model)
            else:
                # the baseline scenario owns the default model tree
                from repro.scenario import get_scenario

                delay_source = get_scenario("baseline-geo").build_delay_source()
        self.delay_source = delay_source
        self.rtt_model = delay_source.rtt_model
        self.beam_map: BeamMap = self.rtt_model.beam_map
        self.internet = internet or InternetModel()
        for svc in SERVICES.values():
            if svc.name not in self.internet.deployments:
                self.internet.register_deployment(
                    deployment(svc.name, svc.footprint, svc.policy)
                )
        self.population = population or synthesize_population(
            self.config.n_customers,
            self.rng,
            countries=self.config.countries,
            beam_map=self.beam_map,
            plan_mix=plan_mix,
        )
        self.delay_source.bind_customers(
            [s.country for s in self.population.subscribers]
        )
        self._build_pools()
        self._build_customer_arrays()
        self._precompute_sites()

    # -- pools and lookups -------------------------------------------------

    def _build_pools(self) -> None:
        self.countries_pool = list(COUNTRIES)
        self.beams_pool = [beam.beam_id for beam in self.beam_map.beams]
        self.services_pool = list(SERVICES)
        self.sites_pool = list(SERVER_SITES)
        self.resolvers_pool = list(RESOLVERS)
        self.domains_pool: List[str] = []
        self._service_domains: Dict[str, np.ndarray] = {}
        seen: Dict[str, int] = {}
        for name, svc in SERVICES.items():
            indices = []
            for _ in range(_DOMAINS_PER_SERVICE):
                domain = svc.sample_domain(self.rng)
                if domain not in seen:
                    seen[domain] = len(self.domains_pool)
                    self.domains_pool.append(domain)
                indices.append(seen[domain])
            self._service_domains[name] = np.array(sorted(set(indices)), dtype=np.int32)
        self._site_base_rtt = np.array(
            [self.internet.base_ground_rtt_ms(SERVER_SITES[s]) for s in self.sites_pool],
            dtype=np.float64,
        )
        self._jitter_noise = unit_lognormal(self.internet.latency.jitter_sigma)
        self._video_service_idx = np.array(
            [
                i
                for i, name in enumerate(self.services_pool)
                if SERVICES[name].category == ServiceCategory.VIDEO
            ],
            dtype=np.int64,
        )

    def _build_customer_arrays(self) -> None:
        subs = self.population.subscribers
        n = len(subs)
        beam_index = {beam_id: i for i, beam_id in enumerate(self.beams_pool)}
        resolver_index = {name: i for i, name in enumerate(self.resolvers_pool)}
        self.cust_country_idx = np.array(
            [self.countries_pool.index(s.country) for s in subs], dtype=np.int16
        )
        self.cust_type = np.array([int(s.subscriber_type) for s in subs], dtype=np.int8)
        self.cust_plan_down = np.array([s.plan_down_mbps for s in subs], dtype=np.float32)
        self.cust_beam_idx = np.array([beam_index[s.beam_id] for s in subs], dtype=np.int16)
        self.cust_beam_peak = np.array([s.beam_peak_utilization for s in subs], dtype=np.float64)
        self.cust_beam_pep = np.array([s.beam_pep_load for s in subs], dtype=np.float64)
        self.cust_resolver_idx = np.array(
            [resolver_index[s.resolver_name] for s in subs], dtype=np.int16
        )
        self.cust_volume_mult = np.array([s.volume_multiplier for s in subs], dtype=np.float64)
        self.cust_flow_mult = np.array([s.flow_multiplier for s in subs], dtype=np.float64)
        self.cust_size_scale = self.cust_volume_mult / np.maximum(self.cust_flow_mult, 1e-9)
        # (service, customer) daily-use probabilities as one dense
        # matrix: the generator reads a row slice per chunk instead of
        # chasing per-subscriber dicts in the per-shard hot loop
        self.cust_use_prob = np.zeros((len(SERVICES), n), dtype=np.float64)
        for s_idx, name in enumerate(SERVICES):
            self.cust_use_prob[s_idx] = [
                s.daily_use_prob.get(name, 0.0) for s in subs
            ]
        self._country_customers: Dict[str, np.ndarray] = {}
        for country in set(s.country for s in subs):
            self._country_customers[country] = np.array(
                [i for i, s in enumerate(subs) if s.country == country], dtype=np.int64
            )

    def _precompute_sites(self) -> None:
        """Server-selection outcomes per (service, resolver) and
        (service, country): site indices into the site pool."""
        site_index = {name: i for i, name in enumerate(self.sites_pool)}
        self._site_by_resolver: Dict[str, np.ndarray] = {}
        self._site_by_country: Dict[str, Dict[str, int]] = {}
        gs = self.internet.ground_station
        for name, svc in SERVICES.items():
            dep = self.internet.deployment_for(name)
            by_resolver = np.empty(len(self.resolvers_pool), dtype=np.int16)
            for r_idx, r_name in enumerate(self.resolvers_pool):
                resolver = RESOLVERS[r_name]
                site = dep.select_site(resolver.egress, gs, self.internet.latency)
                by_resolver[r_idx] = site_index[site.name]
            self._site_by_resolver[name] = by_resolver
            self._site_by_country[name] = {
                country: site_index[
                    dep.select_site(COUNTRIES[country], gs, self.internet.latency).name
                ]
                for country in self.countries_pool
            }
        self._resolver_is_ecs = np.array(
            [RESOLVERS[r].supports_ecs for r in self.resolvers_pool], dtype=bool
        )
        self._resolver_ecs_accuracy = np.array(
            [RESOLVERS[r].ecs_accuracy for r in self.resolvers_pool], dtype=np.float64
        )

    # -- generation ---------------------------------------------------------

    def shard_plan(self) -> List[ShardSpec]:
        """The shards :meth:`generate` will execute (config-derived)."""
        n_shards = self.config.n_shards or default_shard_count(len(self.population))
        return plan_shards(len(self.population), n_shards)

    def generate(self) -> FlowFrame:
        """Produce the full synthetic capture.

        The population is split into contiguous customer-id shards,
        each generated from its own ``SeedSequence``-spawned RNG
        stream, then merged in shard order — so the result is
        bit-identical for any ``n_workers`` (see DESIGN.md §7).
        """
        shards = self.shard_plan()
        workers = resolve_workers(self.config.n_workers)
        frames = [
            frame
            for frame in generate_shards(self, shards, workers)
            if frame is not None
        ]
        if not frames:
            raise RuntimeError("workload produced no flows")
        if len(frames) == 1:
            return frames[0]
        return FlowFrame.concat(frames)

    def generate_shard(self, shard: ShardSpec) -> Optional[FlowFrame]:
        """Generate the flows of one customer shard.

        Draws from the shard's own spawned RNG stream; ``None`` when
        the shard's customers produce no flows at all (tiny configs).
        """
        seed = np.random.SeedSequence(self.config.seed).spawn(shard.n_shards)[
            shard.index
        ]
        rng = np.random.default_rng(seed)
        return self.generate_shard_days(shard, 0, self.config.days, rng)

    def generate_shard_days(
        self,
        shard: ShardSpec,
        day_lo: int,
        day_hi: int,
        rng: np.random.Generator,
    ) -> Optional[FlowFrame]:
        """Generate one shard's flows for days ``[day_lo, day_hi)``.

        The streaming producer (:mod:`repro.stream`) calls this once
        per (shard, window) with a window-specific RNG stream; the
        one-shot :meth:`generate_shard` is the ``[0, days)`` special
        case, so its draws are byte-identical to the pre-streaming
        generator.
        """
        if not 0 <= day_lo < day_hi <= self.config.days:
            raise ValueError(
                f"day window [{day_lo}, {day_hi}) outside capture "
                f"[0, {self.config.days})"
            )
        chunks: List[Dict[str, np.ndarray]] = []
        for country, cust_ids in sorted(self._country_customers.items()):
            shard_ids = cust_ids[(cust_ids >= shard.lo) & (cust_ids < shard.hi)]
            if len(shard_ids) == 0:
                continue
            profile = country_profile(country)
            for svc_idx, (name, svc) in enumerate(SERVICES.items()):
                chunk = self._generate_service_chunk(
                    country, shard_ids, profile, svc_idx, svc, rng=rng,
                    day_lo=day_lo, day_hi=day_hi,
                )
                if chunk is not None:
                    chunks.append(chunk)
            if self.config.include_dns:
                dns_chunk = self._generate_dns_chunk(
                    country, shard_ids, profile, rng=rng,
                    day_lo=day_lo, day_hi=day_hi,
                )
                if dns_chunk is not None:
                    chunks.append(dns_chunk)
            if self.traffic.qoe is not None:
                # Video sessions draw from the same per-(shard, window)
                # stream, after the country's flow/DNS chunks; a
                # session is contained in one (customer, day), so
                # day-aligned windows never split it. When qoe is off
                # this branch consumes zero draws — baseline captures
                # stay bit-identical.
                session_chunk = self._generate_session_chunk(
                    country, shard_ids, profile, rng=rng,
                    day_lo=day_lo, day_hi=day_hi,
                )
                if session_chunk is not None:
                    chunks.append(session_chunk)
        if not chunks:
            return None
        columns = {
            key: np.concatenate([chunk[key] for chunk in chunks])
            for key in chunks[0]
        }
        return FlowFrame(
            countries=self.countries_pool,
            beams=self.beams_pool,
            services=self.services_pool,
            domains=self.domains_pool,
            sites=self.sites_pool,
            resolvers=self.resolvers_pool,
            **columns,
        )

    # -- per-batch internals --------------------------------------------------
    #
    # Every sampling helper takes an explicit ``rng`` (defaulting to the
    # construction-time stream) so shards can draw from their own
    # spawned streams without touching shared state.

    def _activity_pairs(
        self,
        cust_ids: np.ndarray,
        probs: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        day_lo: int = 0,
        day_hi: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(customer, day) pairs on which the service is used.

        ``day_lo``/``day_hi`` bound the half-open day range sampled
        (default: the whole capture). Day indices are absolute.
        """
        rng = rng if rng is not None else self.rng
        day_hi = self.config.days if day_hi is None else day_hi
        active = rng.random((len(cust_ids), day_hi - day_lo)) < probs[:, None]
        rows, day_idx = np.nonzero(active)
        return cust_ids[rows], day_idx + day_lo

    def _sample_hours(
        self, profile, n: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(local hour, UTC hour) arrays of length n."""
        rng = rng if rng is not None else self.rng
        hour_local = (
            rng.choice(24, size=n, p=profile.hourly_weights_local)
            + rng.uniform(0.0, 1.0, n)
        )
        hour_utc = utc_hour(profile.location, hour_local)
        return hour_local, hour_utc

    def _generate_service_chunk(
        self,
        country: str,
        cust_ids: np.ndarray,
        profile,
        svc_idx: int,
        svc: Service,
        rng: Optional[np.random.Generator] = None,
        day_lo: int = 0,
        day_hi: Optional[int] = None,
    ) -> Optional[Dict[str, np.ndarray]]:
        rng = rng if rng is not None else self.rng
        probs = self.cust_use_prob[svc_idx, cust_ids]
        if not probs.any():
            return None
        pair_cust, pair_day = self._activity_pairs(
            cust_ids, probs, rng=rng, day_lo=day_lo, day_hi=day_hi
        )
        if len(pair_cust) == 0:
            return None

        intensity = profile.category_intensity[svc.category]
        flow_int = (
            self.cust_flow_mult[pair_cust]
            * intensity**0.4
            * self.config.flow_scale
        )
        # Flows per active customer-day. The default path multiplies by
        # unit-median noise — bitwise-equal to the legacy bare
        # ``rng.lognormal(0, flows_sigma)`` draw — while a scenario
        # override replaces the median*noise product wholesale.
        flows_dist = self.traffic.flows_dists.get(svc.name)
        if flows_dist is not None:
            raw_flows = flow_int * flows_dist.sample(rng, len(pair_cust))
        else:
            raw_flows = (
                svc.flows_median
                * flow_int
                * svc.flows_noise.sample(rng, len(pair_cust))
            )
        weight = self.traffic.category_weights.get(svc.category)
        if weight is not None and weight != 1.0:
            raw_flows = raw_flows * weight
        n_flows = np.maximum(1, np.round(raw_flows).astype(np.int64))
        flow_cust = np.repeat(pair_cust, n_flows)
        flow_day = np.repeat(pair_day, n_flows)
        total = len(flow_cust)

        hour_local, hour_utc = self._sample_hours(profile, total, rng=rng)
        ts = flow_day * SECONDS_PER_DAY + hour_utc * 3600.0

        l7 = svc.sample_protocol(rng, total).astype(np.int8)
        # Day-to-day burstiness: a small fraction of customer-days are
        # binges (community APs more often) — these drive the
        # heavy-hitter tails of Figures 5b/5c. The day factor is a
        # two-mode lognormal Mixture whose first (binge) component's
        # weight is overridden per subscriber type.
        n_pairs = len(pair_cust)
        binge_prob = np.where(
            self.cust_type[pair_cust] == int(SubscriberType.COMMUNITY), 0.10, 0.035
        )
        if len(self.traffic.day_factor.components) == 2:
            day_draw = self.traffic.day_factor.sample(
                rng, n_pairs, first_weight=binge_prob
            )
        else:
            day_draw = self.traffic.day_factor.sample(rng, n_pairs)
        day_factor = np.repeat(day_draw, n_flows)
        size_scale = self.cust_size_scale[flow_cust] * intensity**0.6 * day_factor
        size_dist = self.traffic.size_dists.get(svc.name)
        if size_dist is not None:
            bytes_down = size_dist.sample(rng, total) * size_scale
        else:
            bytes_down = svc.size.sample_down(rng, total) * size_scale
        bytes_up = svc.size.sample_up(bytes_down, rng)

        domains = self._service_domains[svc.name]
        domain_idx = domains[rng.integers(0, len(domains), total)]

        site_idx = self._select_sites(svc, country, flow_cust, total, rng=rng)
        ground_rtt = self._site_base_rtt[site_idx] * self._jitter_noise.sample(
            rng, total
        )

        utilization = self.beam_map.utilization_bulk(
            self.cust_beam_peak[flow_cust], hour_local, profile.continent
        )
        pep_load = self.beam_map.pep_utilization_bulk(
            self.cust_beam_pep[flow_cust], hour_local, profile.continent
        )

        sat_rtt = np.full(total, np.nan, dtype=np.float32)
        https_mask = l7 == _HTTPS_IDX
        if https_mask.any():
            # The flow start-times thread into the delay source: the
            # static source ignores them (bit-identical to the bare
            # model) while the constellation source derives its
            # per-epoch floor from them — draw-free either way.
            sat_rtt[https_mask] = (
                self.delay_source.sample_handshake_rtt_bulk(
                    country,
                    utilization[https_mask],
                    pep_load[https_mask],
                    ts[https_mask],
                    rng,
                )
                * 1000.0
            ).astype(np.float32)

        duration = self._sample_duration(
            svc,
            flow_cust,
            bytes_down,
            utilization,
            sat_rtt,
            profile.continent,
            rng=rng,
        )

        return self._make_chunk(
            ts=ts,
            day=flow_day,
            hour_utc=hour_utc,
            flow_cust=flow_cust,
            l7=l7,
            service_idx=np.full(total, svc_idx, dtype=np.int16),
            domain_idx=domain_idx.astype(np.int32),
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            duration=duration,
            sat_rtt=sat_rtt,
            ground_rtt=ground_rtt.astype(np.float32),
            resolver_idx=np.full(total, -1, dtype=np.int16),
            dns_response=np.full(total, np.nan, dtype=np.float32),
            site_idx=site_idx.astype(np.int16),
        )

    def _select_sites(
        self,
        svc: Service,
        country: str,
        flow_cust: np.ndarray,
        total: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        rng = rng if rng is not None else self.rng
        resolver_idx = self.cust_resolver_idx[flow_cust]
        egress_sites = self._site_by_resolver[svc.name][resolver_idx]
        if svc.policy in (SelectionPolicy.ANYCAST, SelectionPolicy.ORIGIN):
            return egress_sites
        ecs_possible = self._resolver_is_ecs[resolver_idx]
        ecs_roll = rng.random(total) < self._resolver_ecs_accuracy[resolver_idx]
        ecs_mask = ecs_possible & ecs_roll
        country_site = self._site_by_country[svc.name][country]
        return np.where(ecs_mask, country_site, egress_sites)

    def _sample_duration(
        self,
        svc: Service,
        flow_cust: np.ndarray,
        bytes_down: np.ndarray,
        utilization: np.ndarray,
        sat_rtt_ms: np.ndarray,
        continent: str,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        rng = rng if rng is not None else self.rng
        total = len(flow_cust)
        plan_bps = self.cust_plan_down[flow_cust].astype(np.float64) * 1e6
        frac = rng.beta(6.0, 1.4, total)
        congestion = np.clip((utilization - 0.55) / 0.45, 0.0, 1.0)
        rate = plan_bps * frac * (1.0 - 0.55 * congestion * rng.uniform(0.5, 1.0, total))
        community = self.cust_type[flow_cust] == int(SubscriberType.COMMUNITY)
        rate = np.where(community, rate * rng.uniform(0.25, 0.7, total), rate)
        if continent == "Africa":
            rate *= 0.9  # less capable end-user terminals (Section 6.5)
        if svc.category == ServiceCategory.VIDEO:
            # rate-limited streaming for about half the flows
            bitrate = _VIDEO_BITRATES_MBPS[rng.integers(0, 4, total)] * 1e6
            limited = rng.random(total) < 0.5
            rate = np.where(limited, np.minimum(rate, bitrate), rate)
        rate = np.maximum(rate, 20_000.0)
        # Bulk transfers mostly ride reused (kept-alive) connections, so
        # their probe-side duration is transfer-dominated — that is what
        # puts the Figure 11a knees at the commercial plan rates.
        handshake = np.where(np.isnan(sat_rtt_ms), 600.0, sat_rtt_ms) / 1000.0
        reused = (bytes_down > 5e6) & (rng.random(total) < 0.7)
        handshake = np.where(reused, 0.0, handshake)
        tail = rng.exponential(0.15, total)
        return (bytes_down * 8.0 / rate + handshake + tail).astype(np.float32)

    def _generate_dns_chunk(
        self,
        country: str,
        cust_ids: np.ndarray,
        profile,
        rng: Optional[np.random.Generator] = None,
        day_lo: int = 0,
        day_hi: Optional[int] = None,
    ) -> Optional[Dict[str, np.ndarray]]:
        rng = rng if rng is not None else self.rng
        day_hi = self.config.days if day_hi is None else day_hi
        days = day_hi - day_lo
        mean = (
            self.config.dns_flows_per_day
            * self.cust_flow_mult[cust_ids]
            * self.config.flow_scale
        )
        counts = rng.poisson(np.tile(mean, days))
        if counts.sum() == 0:
            return None
        pair_cust = np.tile(cust_ids, days)
        pair_day = np.repeat(np.arange(day_lo, day_hi), len(cust_ids))
        flow_cust = np.repeat(pair_cust, counts)
        flow_day = np.repeat(pair_day, counts)
        total = len(flow_cust)

        hour_local, hour_utc = self._sample_hours(profile, total, rng=rng)
        ts = flow_day * SECONDS_PER_DAY + hour_utc * 3600.0

        resolver_idx = self.cust_resolver_idx[flow_cust].copy()
        # a small fraction of queries go to secondary resolvers
        stray = rng.random(total) < 0.08
        if stray.any():
            resolver_idx[stray] = rng.integers(
                0, len(self.resolvers_pool), stray.sum()
            )

        response = np.empty(total, dtype=np.float32)
        for r_idx in np.unique(resolver_idx):
            mask = resolver_idx == r_idx
            resolver = RESOLVERS[self.resolvers_pool[r_idx]]
            response[mask] = resolver.sample_response_ms(
                self.internet.latency, rng, int(mask.sum())
            ).astype(np.float32)

        bytes_up = rng.integers(60, 90, total).astype(np.float64)
        bytes_down = rng.integers(120, 400, total).astype(np.float64)

        return self._make_chunk(
            ts=ts,
            day=flow_day,
            hour_utc=hour_utc,
            flow_cust=flow_cust,
            l7=np.full(total, _DNS_IDX, dtype=np.int8),
            service_idx=np.full(total, -1, dtype=np.int16),
            domain_idx=np.full(total, -1, dtype=np.int32),
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            duration=(response / 1000.0).astype(np.float32),
            sat_rtt=np.full(total, np.nan, dtype=np.float32),
            ground_rtt=response,
            resolver_idx=resolver_idx.astype(np.int16),
            dns_response=response,
            site_idx=np.full(total, -1, dtype=np.int16),
        )

    def _generate_session_chunk(
        self,
        country: str,
        cust_ids: np.ndarray,
        profile,
        rng: Optional[np.random.Generator] = None,
        day_lo: int = 0,
        day_hi: Optional[int] = None,
    ) -> Optional[Dict[str, np.ndarray]]:
        """ABR video sessions for one country's shard customers.

        Each session's stochastic inputs (count, arrival hour, service,
        duration, effective capacity, domain) are drawn here; the
        chunk schedule and QoE come from the deterministic
        :class:`VideoSessionModel`. Every chunk row carries the
        session id and the session's QoE metrics, so any sharding or
        windowing of the frame can reconstruct per-session QoE by
        deduplicating on ``session_id``.
        """
        rng = rng if rng is not None else self.rng
        qoe = self.traffic.qoe
        if qoe is None or len(self._video_service_idx) == 0:
            return None
        day_hi = self.config.days if day_hi is None else day_hi
        days = day_hi - day_lo
        pair_cust = np.tile(cust_ids, days)
        pair_day = np.repeat(np.arange(day_lo, day_hi), len(cust_ids))
        counts = rng.poisson(qoe.sessions_per_day, len(pair_cust))
        n_sessions = int(counts.sum())
        if n_sessions == 0:
            return None
        sess_cust = np.repeat(pair_cust, counts)
        sess_day = np.repeat(pair_day, counts)
        # ordinal of each session within its (customer, day) pair →
        # a deterministic, partition-independent session id
        ordinal = np.arange(n_sessions) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        session_ids = (
            (sess_cust.astype(np.int64) + 1) * 1_000_000
            + sess_day.astype(np.int64) * 1_000
            + ordinal
        )

        hour_local, hour_utc = self._sample_hours(profile, n_sessions, rng=rng)
        svc_pick = self._video_service_idx[
            rng.integers(0, len(self._video_service_idx), n_sessions)
        ]
        duration = np.clip(
            qoe.duration.sample(rng, n_sessions), qoe.chunk_s, 4.0 * 3600.0
        )
        utilization = self.beam_map.utilization_bulk(
            self.cust_beam_peak[sess_cust], hour_local, profile.continent
        )
        congestion = np.clip((utilization - 0.55) / 0.45, 0.0, 1.0)
        capacity = (
            self.cust_plan_down[sess_cust].astype(np.float64)
            * 1e6
            * rng.uniform(0.55, 0.95, n_sessions)
            * (1.0 - 0.55 * congestion)
        )
        capacity = np.maximum(capacity, 200_000.0)

        model = VideoSessionModel(qoe)
        parts: List[Dict[str, np.ndarray]] = []
        for i in range(n_sessions):
            result = model.simulate(capacity[i], duration[i])
            n_chunks = len(result.chunk_bytes)
            svc_idx = int(svc_pick[i])
            domains = self._service_domains[self.services_pool[svc_idx]]
            domain = int(domains[int(rng.integers(0, len(domains)))])
            base_ts = sess_day[i] * SECONDS_PER_DAY + hour_utc[i] * 3600.0
            ts = base_ts + result.start_offset_s
            cust = np.full(n_chunks, sess_cust[i], dtype=np.int64)
            parts.append(
                self._make_chunk(
                    ts=ts,
                    day=np.full(n_chunks, sess_day[i], dtype=np.int64),
                    hour_utc=(ts % SECONDS_PER_DAY) / 3600.0,
                    flow_cust=cust,
                    l7=np.full(n_chunks, _HTTPS_IDX, dtype=np.int8),
                    service_idx=np.full(n_chunks, svc_idx, dtype=np.int16),
                    domain_idx=np.full(n_chunks, domain, dtype=np.int32),
                    bytes_up=result.chunk_bytes * 0.01,
                    bytes_down=result.chunk_bytes,
                    duration=result.chunk_time_s.astype(np.float32),
                    sat_rtt=np.full(n_chunks, np.nan, dtype=np.float32),
                    ground_rtt=np.full(n_chunks, np.nan, dtype=np.float32),
                    resolver_idx=np.full(n_chunks, -1, dtype=np.int16),
                    dns_response=np.full(n_chunks, np.nan, dtype=np.float32),
                    site_idx=np.full(n_chunks, -1, dtype=np.int16),
                    session_id=np.full(n_chunks, session_ids[i], dtype=np.int64),
                    qoe_rebuffer=np.full(
                        n_chunks, result.rebuffer_ratio, dtype=np.float32
                    ),
                    qoe_level=np.full(n_chunks, result.mean_level, dtype=np.float32),
                    qoe_switches=np.full(n_chunks, result.switches, dtype=np.int16),
                )
            )
        if not parts:
            return None
        return {
            key: np.concatenate([part[key] for part in parts])
            for key in parts[0]
        }

    def _make_chunk(
        self,
        ts: np.ndarray,
        day: np.ndarray,
        hour_utc: np.ndarray,
        flow_cust: np.ndarray,
        l7: np.ndarray,
        service_idx: np.ndarray,
        domain_idx: np.ndarray,
        bytes_up: np.ndarray,
        bytes_down: np.ndarray,
        duration: np.ndarray,
        sat_rtt: np.ndarray,
        ground_rtt: np.ndarray,
        resolver_idx: np.ndarray,
        dns_response: np.ndarray,
        site_idx: np.ndarray,
        session_id: Optional[np.ndarray] = None,
        qoe_rebuffer: Optional[np.ndarray] = None,
        qoe_level: Optional[np.ndarray] = None,
        qoe_switches: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        total = len(ts)
        if session_id is None:
            session_id = np.full(total, -1, dtype=np.int64)
        if qoe_rebuffer is None:
            qoe_rebuffer = np.full(total, np.nan, dtype=np.float32)
        if qoe_level is None:
            qoe_level = np.full(total, np.nan, dtype=np.float32)
        if qoe_switches is None:
            qoe_switches = np.full(total, -1, dtype=np.int16)
        return {
            "ts_start": ts.astype(np.float64),
            "day": day.astype(np.int32),
            "hour_utc": np.minimum(hour_utc.astype(np.float32), _HOUR_MAX_F4),
            "customer_id": (flow_cust + 1).astype(np.int32),
            "country_idx": self.cust_country_idx[flow_cust],
            "subscriber_type": self.cust_type[flow_cust],
            "beam_idx": self.cust_beam_idx[flow_cust],
            "l7_idx": l7,
            "service_true_idx": service_idx,
            "domain_idx": domain_idx,
            "bytes_up": bytes_up.astype(np.float64),
            "bytes_down": bytes_down.astype(np.float64),
            "duration_s": duration.astype(np.float32),
            "sat_rtt_ms": sat_rtt,
            "ground_rtt_ms": ground_rtt.astype(np.float32),
            "resolver_idx": resolver_idx,
            "dns_response_ms": dns_response,
            "site_idx": site_idx,
            "plan_down_mbps": self.cust_plan_down[flow_cust],
            "session_id": session_id.astype(np.int64),
            "qoe_rebuffer": qoe_rebuffer.astype(np.float32),
            "qoe_level": qoe_level.astype(np.float32),
            "qoe_switches": qoe_switches.astype(np.int16),
        }
