"""Emergent congestion: derive beam load from the traffic itself.

The default generator stamps satellite RTTs using the *configured*
diurnal utilization of each beam. This module closes the loop the real
network has: the population's traffic **is** the beam load. We measure
per-(beam, local-hour) offered volume from a generated capture,
normalize it like the paper normalizes Figure 8b ("to the maximum
utilization observed across all beams"), and re-stamp the satellite-RTT
and duration columns with the measured loads.

Usage::

    frame, gen = generate_flow_dataset(config)
    model = EmergentCongestion.from_frame(frame, gen.beam_map)
    frame2 = model.restamp(frame, gen.rtt_model, rng)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.aggregate import local_hour_of
from repro.analysis.dataset import FlowFrame
from repro.flowmeter.records import L7Protocol, L7_ORDER
from repro.internet.geo import COUNTRIES
from repro.satcom.beams import BeamMap
from repro.satcom.delay_model import SatelliteRttModel

_HTTPS_IDX = L7_ORDER.index(L7Protocol.HTTPS)


@dataclass
class EmergentCongestion:
    """Per-(beam, local hour) utilization measured from traffic."""

    beam_map: BeamMap
    utilization: np.ndarray  # [n_beams, 24], in [0, peak_target]
    pep_load: np.ndarray     # [n_beams, 24]
    beam_ids: list

    peak_target: float = 0.95

    @classmethod
    def from_frame(
        cls,
        frame: FlowFrame,
        beam_map: BeamMap,
        peak_target: float = 0.95,
        pep_floor: float = 0.72,
    ) -> "EmergentCongestion":
        """Measure offered load per (beam, local hour).

        The synthetic capture is volume-scaled relative to the real
        network, so absolute capacity comparisons are meaningless —
        loads are normalized to the busiest beam-hour (the paper's
        Figure 8b normalization) and mapped onto ``[0, peak_target]``.
        """
        n_beams = len(beam_map.beams)
        load = np.zeros((n_beams, 24))
        hours = local_hour_of(frame).astype(int) % 24
        volume = frame.bytes_total()
        valid = frame.beam_idx >= 0
        np.add.at(
            load,
            (frame.beam_idx[valid].astype(int), hours[valid]),
            volume[valid],
        )
        # Offered volume relative to beam capacity, then normalized.
        capacities = np.array(
            [beam.capacity_gbps for beam in beam_map.beams]
        ).reshape(-1, 1)
        relative = load / capacities
        peak = relative.max()
        utilization = (
            relative / peak * peak_target if peak > 0 else np.zeros_like(relative)
        )

        # PEP load: each beam's SLA factor shapes how the measured
        # radio load translates into PEP processing pressure.
        pep_sla = np.array([beam.pep_load for beam in beam_map.beams]).reshape(-1, 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            relative_to_target = np.where(
                utilization > 0, utilization / peak_target, 0.0
            )
        pep = pep_sla * (pep_floor + (1.0 - pep_floor) * relative_to_target)
        return cls(
            beam_map=beam_map,
            utilization=np.clip(utilization, 0.0, 0.99),
            pep_load=np.clip(pep, 0.0, 0.99),
            beam_ids=[beam.beam_id for beam in beam_map.beams],
            peak_target=peak_target,
        )

    def utilization_of(self, beam_idx: np.ndarray, hour_local: np.ndarray) -> np.ndarray:
        """Per-flow utilization lookups."""
        return self.utilization[beam_idx.astype(int), hour_local.astype(int) % 24]

    def pep_load_of(self, beam_idx: np.ndarray, hour_local: np.ndarray) -> np.ndarray:
        """Per-flow PEP-load lookups."""
        return self.pep_load[beam_idx.astype(int), hour_local.astype(int) % 24]

    def busiest_beams(self, top: int = 5) -> Dict[str, float]:
        """beam id → peak measured utilization (descending)."""
        peaks = self.utilization.max(axis=1)
        order = np.argsort(-peaks)[:top]
        return {self.beam_ids[i]: float(peaks[i]) for i in order}

    def restamp(
        self,
        frame: FlowFrame,
        rtt_model: SatelliteRttModel,
        rng: np.random.Generator,
    ) -> FlowFrame:
        """A new frame whose satellite RTTs reflect the measured loads.

        Only the ``sat_rtt_ms`` column is regenerated (per country, per
        flow, HTTPS rows); everything else is shared with the input.
        """
        sat = frame.sat_rtt_ms.copy()
        hours = local_hour_of(frame)
        https = (frame.l7_idx == _HTTPS_IDX) & (frame.beam_idx >= 0)
        for country_idx in np.unique(frame.country_idx[https]):
            country = frame.countries[country_idx]
            if country not in COUNTRIES:
                continue
            mask = https & (frame.country_idx == country_idx)
            util = self.utilization_of(frame.beam_idx[mask], hours[mask])
            pep = self.pep_load_of(frame.beam_idx[mask], hours[mask])
            sat[mask] = (
                rtt_model.sample_handshake_rtt_bulk(country, util, pep, rng) * 1000.0
            ).astype(np.float32)
        out = frame.filter(np.ones(len(frame), dtype=bool))
        out.sat_rtt_ms = sat
        return out
