"""The assembled Internet model.

Glues geography, the latency model, service deployments and the
resolver catalog into the object the traffic generator and the
packet-level simulator query: "customer in country X asks resolver R
for service S — which server does it reach, what does the DNS exchange
cost, and what ground RTT will its TCP flow see?"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.internet.geo import COUNTRIES, GROUND_STATION, SERVER_SITES, Location
from repro.internet.latency import LatencyModel
from repro.internet.resolvers import Resolver, ResolverCatalog
from repro.internet.servers import SelectionPolicy, ServiceDeployment
from repro.net.inet import ip_to_int

#: Each serving site owns a /16 so server addresses are recognizably
#: clustered (the analysis only needs them to be stable & distinct).
_SITE_NETWORKS: Dict[str, str] = {
    "Milan-IX": "23.10.0.0",
    "Frankfurt": "23.11.0.0",
    "Amsterdam": "23.12.0.0",
    "Paris": "23.13.0.0",
    "London": "23.14.0.0",
    "Madrid": "23.15.0.0",
    "Marseille": "23.16.0.0",
    "Stockholm": "23.17.0.0",
    "US-East": "52.20.0.0",
    "US-West": "52.52.0.0",
    "Lagos": "197.50.0.0",
    "Kinshasa": "197.60.0.0",
    "Johannesburg": "197.70.0.0",
    "Nairobi": "197.80.0.0",
    "Beijing": "119.10.0.0",
    "Shanghai": "119.20.0.0",
    "Singapore": "119.30.0.0",
    "Mumbai": "119.40.0.0",
}


@dataclass
class ResolutionResult:
    """Outcome of one name resolution + server selection."""

    site: Location
    server_ip: int
    dns_response_ms: float
    resolver: Resolver


@dataclass
class InternetModel:
    """Topology facade used by generators and simulators."""

    latency: LatencyModel = field(default_factory=LatencyModel)
    resolvers: ResolverCatalog = field(default_factory=ResolverCatalog)
    ground_station: Location = GROUND_STATION
    deployments: Dict[str, ServiceDeployment] = field(default_factory=dict)

    def register_deployment(self, deployment: ServiceDeployment) -> None:
        """Make ``deployment`` resolvable by service name."""
        self.deployments[deployment.service] = deployment

    def deployment_for(self, service: str) -> ServiceDeployment:
        """Look up a registered deployment (raises KeyError)."""
        return self.deployments[service]

    def server_ip(self, site: Location, domain: str) -> int:
        """A stable server address for ``domain`` at ``site``."""
        base = ip_to_int(_SITE_NETWORKS.get(site.name, "203.0.0.0"))
        return base + (hash(domain) & 0xFFFF)

    def site_of_ip(self, address: int) -> Optional[str]:
        """Reverse lookup: which site does a server address belong to."""
        prefix = address & 0xFFFF0000
        for name, network in _SITE_NETWORKS.items():
            if ip_to_int(network) == prefix:
                return name
        return None

    def select_server(
        self,
        service: str,
        customer_country: Location,
        resolver: Resolver,
        rng: np.random.Generator,
        domain: Optional[str] = None,
    ) -> ResolutionResult:
        """Resolve ``service`` for a customer and pick the serving node.

        The perceived client location depends on the resolver (egress
        vs ECS country); anycast deployments ignore it entirely.
        """
        deployment = self.deployment_for(service)
        perceived = resolver.perceived_client(customer_country, rng)
        site = deployment.select_site(perceived, self.ground_station, self.latency)
        dns_ms = float(resolver.sample_response_ms(self.latency, rng, 1)[0])
        return ResolutionResult(
            site=site,
            server_ip=self.server_ip(site, domain or service),
            dns_response_ms=dns_ms,
            resolver=resolver,
        )

    def sample_ground_rtt_ms(
        self, site: Location, rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """Ground-segment RTT samples from the ground station to ``site``."""
        return self.latency.sample_rtt_ms(self.ground_station, site, rng, n)

    def base_ground_rtt_ms(self, site: Location) -> float:
        """Median ground RTT to ``site`` (no jitter)."""
        return self.latency.base_rtt_ms(self.ground_station, site)

    @staticmethod
    def country(name: str) -> Location:
        """Subscriber-country lookup convenience."""
        return COUNTRIES[name]

    @staticmethod
    def site(name: str) -> Location:
        """Server-site lookup convenience."""
        return SERVER_SITES[name]
