"""Terrestrial latency model anchored at the ground station.

Figure 9 of the paper shows the *ground RTT* (ground station → server)
as a CDF with clear bumps: ~12 ms (peered CDNs), 15–17 ms and ~35 ms
(European CDN/cloud), ~95 ms (US East coast), ~180 ms (US West), and
300–400 ms (services hosted in the subscriber's original African
country, plus Chinese services popular in Congo).

We model RTT between two locations as::

    rtt_ms = base + 2 * distance_km / v_fiber * stretch(continents) + extra(site)

where ``stretch`` captures path inflation (submarine-cable detours for
Africa, transit for Asia) and ``extra`` captures peering/congestion
penalties of specific destinations. Samples add multiplicative
log-normal jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.internet.geo import Location, geodesic_km

#: Kilometres of fiber traversed per millisecond (2/3 c).
FIBER_KM_PER_MS = 200.0

#: Path-inflation factor per (continent, continent) pair, symmetric.
_DEFAULT_STRETCH: Dict[Tuple[str, str], float] = {
    ("Europe", "Europe"): 1.35,
    ("Europe", "NorthAmerica"): 1.25,
    ("Europe", "Africa"): 1.90,
    ("Europe", "Asia"): 1.55,
    ("Africa", "Africa"): 2.20,
    ("Africa", "NorthAmerica"): 1.60,
    ("Africa", "Asia"): 1.80,
    ("NorthAmerica", "NorthAmerica"): 1.40,
    ("Asia", "Asia"): 1.60,
    ("NorthAmerica", "Asia"): 1.50,
}

#: Destination-specific penalties (ms, added once per RTT): poor local
#: peering in central Africa, transit filtering for Chinese services,
#: the extra hop US-West paths take via the East coast.
_DEFAULT_SITE_EXTRA_MS: Dict[str, float] = {
    "Milan-IX": 2.0,
    "Frankfurt": 1.0,
    "Amsterdam": 2.0,
    "Paris": 1.5,
    "London": 2.0,
    "Madrid": 2.0,
    "Marseille": 1.5,
    "Stockholm": 3.5,
    "US-East": 2.0,
    "US-West": 52.0,
    "Lagos": 34.0,
    "Kinshasa": 200.0,
    "Johannesburg": 48.0,
    "Nairobi": 80.0,
    "Beijing": 112.0,
    "Shanghai": 118.0,
    "Singapore": 32.0,
    "Mumbai": 8.0,
}

#: First-hop/base latency (ms): LAN, queuing, server think time.
_BASE_MS = 3.0


@dataclass
class LatencyModel:
    """Deterministic base RTT plus log-normal jitter between locations."""

    base_ms: float = _BASE_MS
    stretch: Dict[Tuple[str, str], float] = field(default_factory=lambda: dict(_DEFAULT_STRETCH))
    site_extra_ms: Dict[str, float] = field(default_factory=lambda: dict(_DEFAULT_SITE_EXTRA_MS))
    jitter_sigma: float = 0.08
    """Sigma of the multiplicative log-normal jitter on RTT samples."""

    def stretch_factor(self, a: Location, b: Location) -> float:
        """Path-inflation factor between the continents of ``a``/``b``."""
        key = (a.continent, b.continent)
        if key in self.stretch:
            return self.stretch[key]
        rkey = (b.continent, a.continent)
        if rkey in self.stretch:
            return self.stretch[rkey]
        return 1.6  # conservative default for unlisted pairs

    def base_rtt_ms(self, a: Location, b: Location) -> float:
        """Median RTT between ``a`` and ``b`` (no jitter)."""
        distance = geodesic_km(a, b)
        propagation = 2.0 * distance / FIBER_KM_PER_MS * self.stretch_factor(a, b)
        extra = self.site_extra_ms.get(b.name, 0.0)
        return self.base_ms + propagation + extra

    def sample_rtt_ms(
        self, a: Location, b: Location, rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """``n`` jittered RTT samples between ``a`` and ``b``."""
        base = self.base_rtt_ms(a, b)
        jitter = rng.lognormal(mean=0.0, sigma=self.jitter_sigma, size=n)
        return base * jitter

    def one_way_ms(self, a: Location, b: Location) -> float:
        """Half the base RTT — used by the packet-level simulator links."""
        return self.base_rtt_ms(a, b) / 2.0
