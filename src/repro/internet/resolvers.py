"""The DNS resolver ecosystem (paper Section 6.3, Figure 10).

The paper observes 4 195 distinct resolvers; customers largely ignore
the operator resolver and use open ones — Google everywhere (86 % of
requests in Congo), a local Nigerian operator resolver whose responses
take ~120 ms because queries must travel Italy→Nigeria→Italy, and two
Chinese resolvers (Baidu ~356 ms, 114DNS ~110 ms) used by Chinese
communities in Africa.

Each resolver is modeled by its egress location (which sets the network
component of the response time observed at the ground station and, for
non-ECS resolvers, the location CDNs perceive the client at), a
processing time, a cache-hit ratio, and ECS support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.internet.geo import GROUND_STATION, SERVER_SITES, Location
from repro.internet.latency import LatencyModel
from repro.net.inet import ip_to_int


@dataclass(frozen=True)
class Resolver:
    """A DNS resolver as seen from the ground station."""

    name: str
    egress: Location
    address: int
    processing_ms: float
    supports_ecs: bool = False
    cache_hit_ratio: float = 0.85
    upstream_miss_ms: float = 90.0
    ecs_accuracy: float = 0.7
    """For ECS resolvers: probability the CDN perceives the client at the
    customer's real country (via the operator's per-country NAT pools)
    rather than at the resolver egress."""

    def sample_response_ms(
        self, latency: LatencyModel, rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """Response times observed at the ground station.

        Network RTT to the resolver egress, plus processing, plus the
        upstream recursion cost on cache misses.
        """
        network = latency.sample_rtt_ms(GROUND_STATION, self.egress, rng, n)
        processing = self.processing_ms * rng.lognormal(0.0, 0.25, size=n)
        miss = rng.random(n) >= self.cache_hit_ratio
        upstream = np.where(miss, self.upstream_miss_ms * rng.lognormal(0.0, 0.5, size=n), 0.0)
        return network + processing + upstream

    def perceived_client(
        self, customer_country: Location, rng: np.random.Generator
    ) -> Location:
        """Where CDN server-selection believes the client is."""
        if self.supports_ecs and rng.random() < self.ecs_accuracy:
            return customer_country
        return self.egress


def _site(name: str) -> Location:
    return SERVER_SITES[name]


#: The top-8 resolvers of Figure 10 plus the long-tail "Other" bucket.
#: Processing times are calibrated so median response times land on the
#: paper's right-hand column (3.98 / 21.98 / 19.97 / 119.98 / 17.99 /
#: 23.99 / 355.97 / 109.98 / 29.97 ms).
RESOLVERS: Dict[str, Resolver] = {
    resolver.name: resolver
    for resolver in (
        Resolver(
            "Operator-EU",
            GROUND_STATION,
            ip_to_int("185.11.0.53"),
            processing_ms=0.9,
            cache_hit_ratio=0.93,
        ),
        Resolver(
            "Google",
            _site("Milan-IX"),
            ip_to_int("8.8.8.8"),
            processing_ms=9.0,
            supports_ecs=True,
            cache_hit_ratio=0.92,
        ),
        Resolver("CloudFlare", _site("Milan-IX"), ip_to_int("1.1.1.1"), processing_ms=7.0),
        Resolver("Nigerian", _site("Lagos"), ip_to_int("197.210.252.38"), processing_ms=6.0),
        Resolver("Open DNS", _site("Milan-IX"), ip_to_int("208.67.222.222"), processing_ms=5.0),
        Resolver("Level3", _site("Frankfurt"), ip_to_int("4.2.2.1"), processing_ms=5.5),
        Resolver("Baidu", _site("Beijing"), ip_to_int("180.76.76.76"), processing_ms=110.0),
        Resolver("114DNS", _site("Mumbai"), ip_to_int("114.114.114.114"), processing_ms=5.0),
        Resolver("Other", _site("Frankfurt"), ip_to_int("151.99.125.1"), processing_ms=11.0),
    )
}


#: Per-country resolver usage shares (percent of DNS traffic) — the
#: measured adoption matrix of Figure 10, used as a *population input*:
#: each synthetic customer draws its resolver preference from it.
RESOLVER_SHARES: Dict[str, Dict[str, float]] = {
    "Congo": {
        "Operator-EU": 0.87, "Google": 85.68, "CloudFlare": 3.02, "Nigerian": 0.00,
        "Open DNS": 1.22, "Level3": 0.45, "Baidu": 0.68, "114DNS": 2.97, "Other": 5.11,
    },
    "Nigeria": {
        "Operator-EU": 9.10, "Google": 50.69, "CloudFlare": 2.54, "Nigerian": 11.84,
        "Open DNS": 4.00, "Level3": 7.63, "Baidu": 0.32, "114DNS": 3.43, "Other": 10.46,
    },
    "South Africa": {
        "Operator-EU": 1.87, "Google": 63.47, "CloudFlare": 10.36, "Nigerian": 6.32,
        "Open DNS": 0.65, "Level3": 0.09, "Baidu": 0.22, "114DNS": 1.64, "Other": 15.38,
    },
    "Ireland": {
        "Operator-EU": 43.75, "Google": 38.49, "CloudFlare": 2.03, "Nigerian": 0.00,
        "Open DNS": 0.49, "Level3": 0.00, "Baidu": 0.12, "114DNS": 0.05, "Other": 15.07,
    },
    "Spain": {
        "Operator-EU": 28.95, "Google": 61.27, "CloudFlare": 2.05, "Nigerian": 0.00,
        "Open DNS": 0.72, "Level3": 0.00, "Baidu": 0.11, "114DNS": 0.03, "Other": 6.87,
    },
    "UK": {
        "Operator-EU": 38.10, "Google": 34.67, "CloudFlare": 6.04, "Nigerian": 0.00,
        "Open DNS": 6.97, "Level3": 0.49, "Baidu": 0.05, "114DNS": 0.01, "Other": 13.67,
    },
}

#: Fallback mixes for countries not detailed in Figure 10.
_DEFAULT_EUROPE_SHARES = {
    "Operator-EU": 35.0, "Google": 45.0, "CloudFlare": 5.0, "Open DNS": 3.0, "Other": 12.0,
}
_DEFAULT_AFRICA_SHARES = {
    "Operator-EU": 3.0, "Google": 70.0, "CloudFlare": 5.0, "Open DNS": 2.0,
    "114DNS": 2.0, "Baidu": 0.5, "Other": 17.5,
}


@dataclass
class ResolverCatalog:
    """Per-country resolver choice."""

    resolvers: Dict[str, Resolver] = field(default_factory=lambda: dict(RESOLVERS))
    shares: Dict[str, Dict[str, float]] = field(default_factory=lambda: {
        country: dict(mix) for country, mix in RESOLVER_SHARES.items()
    })

    def mix_for(self, country_name: str, continent: str) -> Dict[str, float]:
        """The resolver share mix for a country (with fallback)."""
        forced = getattr(self, "_forced_name", None)
        if forced is not None:
            return {forced: 100.0}
        if country_name in self.shares:
            return self.shares[country_name]
        if continent == "Africa":
            return _DEFAULT_AFRICA_SHARES
        return _DEFAULT_EUROPE_SHARES

    def names_and_weights(self, country_name: str, continent: str) -> Tuple[List[str], np.ndarray]:
        """Resolver names and normalized choice probabilities."""
        mix = self.mix_for(country_name, continent)
        names = list(mix)
        weights = np.array([mix[name] for name in names], dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError(f"empty resolver mix for {country_name}")
        return names, weights / total

    def choose(
        self, country_name: str, continent: str, rng: np.random.Generator
    ) -> Resolver:
        """Draw one resolver according to the country's mix."""
        names, weights = self.names_and_weights(country_name, continent)
        return self.resolvers[names[rng.choice(len(names), p=weights)]]

    @classmethod
    def forced(cls, resolver_name: str) -> "ResolverCatalog":
        """A catalog where every customer uses ``resolver_name``.

        Implements the mitigation of Section 6.4: "force the use of the
        SatCom operator's resolver".
        """
        if resolver_name not in RESOLVERS:
            raise KeyError(resolver_name)
        shares = {
            country: {resolver_name: 100.0} for country in RESOLVER_SHARES
        }
        catalog = cls(shares=shares)
        catalog._forced_name = resolver_name
        return catalog

    def mix_override(self) -> Optional[str]:
        """Name of the forced resolver, if any."""
        return getattr(self, "_forced_name", None)

    def by_address(self, address: int) -> Optional[Resolver]:
        """Reverse lookup used by the analysis to label DNS flows."""
        for resolver in self.resolvers.values():
            if resolver.address == address:
                return resolver
        return None
