"""Geography: locations, countries, geodesic distance.

The monitored satellite serves Europe and Africa "from Ireland to South
Africa" (Section 2.1) with a single ground station in Italy. Locations
here are population-weighted country centroids; distances use the
haversine formula. These coordinates drive both the satellite geometry
(slant range → propagation delay, elevation → channel quality) and the
terrestrial latency model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.constants import EARTH_RADIUS_M


@dataclass(frozen=True)
class Location:
    """A named point on Earth."""

    name: str
    lat_deg: float
    lon_deg: float
    continent: str = ""

    def __str__(self) -> str:
        return self.name


def lon_hour_shift(location: Location) -> float:
    """Hours ahead of UTC at ``location``'s longitude (15° per hour)."""
    return location.lon_deg / 15.0


def local_hour(location: Location, hour_utc):
    """Approximate local time from longitude. Accepts scalar or ndarray."""
    return (hour_utc + location.lon_deg / 15.0) % 24.0


def utc_hour(location: Location, hour_local):
    """Inverse of :func:`local_hour`. Accepts scalar or ndarray."""
    return (hour_local - location.lon_deg / 15.0) % 24.0


SATELLITE_LONGITUDE_DEG = 9.0
"""Orbital slot of the monitored GEO satellite (degrees East). Chosen so
the footprint spans Ireland to South Africa with Ireland at the coverage
edge, as the paper describes."""

GROUND_STATION = Location("Fucino-IT", 41.98, 13.60, "Europe")
"""The single ground station, in Italy (Section 2.1). All traffic enters
the Internet here."""


#: Subscriber countries. The top-3 European and top-3 African countries
#: analyzed throughout the paper come first; the remaining entries fill
#: out the >20-country footprint of Figure 2.
COUNTRIES: Dict[str, Location] = {
    "Congo": Location("Congo", -4.32, 15.31, "Africa"),  # DR Congo, Kinshasa
    "Nigeria": Location("Nigeria", 9.08, 7.49, "Africa"),
    "South Africa": Location("South Africa", -26.20, 28.05, "Africa"),
    "Ireland": Location("Ireland", 53.35, -6.26, "Europe"),
    "Spain": Location("Spain", 40.42, -3.70, "Europe"),
    "UK": Location("UK", 51.51, -0.13, "Europe"),
    "Germany": Location("Germany", 52.52, 13.40, "Europe"),
    "France": Location("France", 48.86, 2.35, "Europe"),
    "Italy": Location("Italy", 41.90, 12.50, "Europe"),
    "Portugal": Location("Portugal", 38.72, -9.14, "Europe"),
    "Greece": Location("Greece", 37.98, 23.73, "Europe"),
    "Poland": Location("Poland", 52.23, 21.01, "Europe"),
    "Morocco": Location("Morocco", 33.97, -6.85, "Africa"),
    "Senegal": Location("Senegal", 14.72, -17.47, "Africa"),
    "Cameroon": Location("Cameroon", 3.87, 11.52, "Africa"),
    "Ghana": Location("Ghana", 5.60, -0.19, "Africa"),
    "Kenya": Location("Kenya", -1.29, 36.82, "Africa"),
    "Angola": Location("Angola", -8.84, 13.23, "Africa"),
    "Mozambique": Location("Mozambique", -25.97, 32.57, "Africa"),
    "Ivory Coast": Location("Ivory Coast", 5.36, -4.01, "Africa"),
    "Mali": Location("Mali", 12.64, -8.00, "Africa"),
    "Libya": Location("Libya", 32.89, 13.19, "Africa"),
}


#: Server locations referenced by the CDN/resolver models.
SERVER_SITES: Dict[str, Location] = {
    "Milan-IX": Location("Milan-IX", 45.46, 9.19, "Europe"),
    "Frankfurt": Location("Frankfurt", 50.11, 8.68, "Europe"),
    "Amsterdam": Location("Amsterdam", 52.37, 4.90, "Europe"),
    "Paris": Location("Paris", 48.86, 2.35, "Europe"),
    "London": Location("London", 51.51, -0.13, "Europe"),
    "Madrid": Location("Madrid", 40.42, -3.70, "Europe"),
    "Marseille": Location("Marseille", 43.30, 5.37, "Europe"),
    "Stockholm": Location("Stockholm", 59.33, 18.07, "Europe"),
    "US-East": Location("US-East", 39.04, -77.49, "NorthAmerica"),  # Ashburn
    "US-West": Location("US-West", 37.37, -121.92, "NorthAmerica"),  # San Jose
    "Lagos": Location("Lagos", 6.52, 3.38, "Africa"),
    "Kinshasa": Location("Kinshasa", -4.32, 15.31, "Africa"),
    "Johannesburg": Location("Johannesburg", -26.20, 28.05, "Africa"),
    "Nairobi": Location("Nairobi", -1.29, 36.82, "Africa"),
    "Beijing": Location("Beijing", 39.90, 116.40, "Asia"),
    "Shanghai": Location("Shanghai", 31.23, 121.47, "Asia"),
    "Singapore": Location("Singapore", 1.35, 103.82, "Asia"),
    "Mumbai": Location("Mumbai", 19.08, 72.88, "Asia"),
}


def country(name: str) -> Location:
    """Look up a subscriber country by name (raises KeyError)."""
    return COUNTRIES[name]


def geodesic_km(a: Location, b: Location) -> float:
    """Great-circle distance between two locations in kilometres.

    >>> round(geodesic_km(COUNTRIES["UK"], COUNTRIES["Spain"]), -2)
    1300.0
    """
    lat1, lon1 = math.radians(a.lat_deg), math.radians(a.lon_deg)
    lat2, lon2 = math.radians(b.lat_deg), math.radians(b.lon_deg)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * (EARTH_RADIUS_M / 1000.0) * math.asin(min(1.0, math.sqrt(h)))


def european_countries() -> Dict[str, Location]:
    """Subscriber countries on the European continent."""
    return {name: loc for name, loc in COUNTRIES.items() if loc.continent == "Europe"}


def african_countries() -> Dict[str, Location]:
    """Subscriber countries on the African continent."""
    return {name: loc for name, loc in COUNTRIES.items() if loc.continent == "Africa"}
