"""The terrestrial Internet model.

Everything the ground station talks to: geography and geodesic latency,
origin/CDN server deployments with their selection policies, and the DNS
resolver ecosystem the paper's subscribers actually use (Section 6.3).
"""

from repro.internet.geo import (
    COUNTRIES,
    GROUND_STATION,
    SATELLITE_LONGITUDE_DEG,
    Location,
    country,
    geodesic_km,
)
from repro.internet.latency import LatencyModel
from repro.internet.resolvers import RESOLVERS, Resolver, ResolverCatalog
from repro.internet.servers import CdnFootprint, SelectionPolicy, ServiceDeployment
from repro.internet.topology import InternetModel

__all__ = [
    "COUNTRIES",
    "GROUND_STATION",
    "SATELLITE_LONGITUDE_DEG",
    "Location",
    "country",
    "geodesic_km",
    "LatencyModel",
    "RESOLVERS",
    "Resolver",
    "ResolverCatalog",
    "CdnFootprint",
    "SelectionPolicy",
    "ServiceDeployment",
    "InternetModel",
]
