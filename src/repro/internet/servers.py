"""Server deployments: CDN footprints and selection policies.

Section 6.4 of the paper shows how server selection breaks for SatCom
customers: all traffic egresses in Italy, yet CDNs and resolvers often
*perceive* the client elsewhere — at the resolver's location (classic
DNS-based mapping without ECS), or in the customer's real country (when
EDNS-Client-Subnet carries the operator's per-country NAT pool prefix).
Anycast CDNs are immune because routing from the Italian egress picks
the nearest node regardless of DNS.

We model three policies and a set of footprints wide enough to create
the paper's ground-RTT bumps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.internet.geo import SERVER_SITES, Location, geodesic_km
from repro.internet.latency import LatencyModel


class SelectionPolicy(enum.Enum):
    """How a deployment maps a client to a serving node."""

    DNS_RESOLVER_GEO = "dns-resolver-geo"
    """Node nearest to the *resolver egress* (no ECS)."""

    ECS = "ecs"
    """Node nearest to the geolocation of the client prefix carried in
    EDNS-Client-Subnet — for SatCom customers that is the operator's
    per-country NAT pool, i.e. the customer's *home country*, conflicting
    with the actual routing through Italy."""

    ANYCAST = "anycast"
    """Node nearest (in RTT from the ground station) to the Italian
    egress — DNS-independent."""

    ORIGIN = "origin"
    """A single fixed site (no CDN)."""


@dataclass(frozen=True)
class CdnFootprint:
    """A named set of candidate serving sites."""

    name: str
    site_names: tuple

    def sites(self) -> List[Location]:
        """Resolve site names to locations."""
        return [SERVER_SITES[name] for name in self.site_names]


#: Footprints used by the service catalog. Site names refer to
#: :data:`repro.internet.geo.SERVER_SITES`.
FOOTPRINTS: Dict[str, CdnFootprint] = {
    footprint.name: footprint
    for footprint in (
        # Hyperscale CDN with African presence (Google/Meta class).
        CdnFootprint(
            "global-cdn",
            (
                "Milan-IX",
                "Frankfurt",
                "Amsterdam",
                "Paris",
                "London",
                "Madrid",
                "Marseille",
                "US-East",
                "US-West",
                "Lagos",
                "Johannesburg",
                "Nairobi",
                "Singapore",
                "Mumbai",
            ),
        ),
        # CDN with European + US presence only (many mid-size players).
        CdnFootprint(
            "euro-us-cdn",
            ("Milan-IX", "Frankfurt", "Amsterdam", "Paris", "London", "Madrid", "US-East", "US-West"),
        ),
        # Apple/Akamai class: Europe + US + Asia, no African nodes.
        CdnFootprint(
            "apple-cdn",
            ("Milan-IX", "Frankfurt", "Paris", "London", "Madrid", "US-East", "US-West",
             "Singapore", "Mumbai"),
        ),
        # Peered CDN: nodes directly peered with the SatCom operator —
        # the ~12 ms leftmost bump of Figure 9.
        CdnFootprint("peered-cdn", ("Milan-IX", "Frankfurt")),
        # Video CDN with deep European deployment (Netflix OCA class).
        CdnFootprint(
            "video-cdn",
            ("Milan-IX", "Frankfurt", "Amsterdam", "Paris", "London", "Madrid", "Marseille", "Johannesburg"),
        ),
        # US cloud regions (the 95 / 180 ms bumps).
        CdnFootprint("us-cloud-east", ("US-East",)),
        CdnFootprint("us-cloud-west", ("US-West",)),
        # European cloud/hosting (the ~35 ms bump).
        CdnFootprint("euro-cloud", ("Stockholm", "Amsterdam", "London")),
        # Services hosted only in Africa (local news, banking, portals).
        CdnFootprint("africa-local", ("Lagos", "Kinshasa", "Johannesburg", "Nairobi")),
        # Chinese platforms (WeChat, Baidu properties, QQ, NetEase).
        CdnFootprint("china-cloud", ("Beijing", "Shanghai")),
        # Asian CDN edge (TikTok class: Asian core, some EU edges).
        CdnFootprint("asia-cdn", ("Singapore", "Mumbai", "Frankfurt", "Marseille")),
    )
}


@dataclass
class ServiceDeployment:
    """How one service's servers are deployed and selected."""

    service: str
    footprint: CdnFootprint
    policy: SelectionPolicy

    def select_site(
        self,
        perceived_client: Location,
        ground_station: Location,
        latency: Optional[LatencyModel] = None,
    ) -> Location:
        """Pick the serving node for a client perceived at
        ``perceived_client``.

        ``DNS_RESOLVER_GEO``/``ECS`` deployments choose the
        geographically nearest node to the perceived client;
        ``ANYCAST`` chooses the lowest-RTT node from the ground
        station; ``ORIGIN`` always returns the single site.
        """
        sites = self.footprint.sites()
        if self.policy == SelectionPolicy.ORIGIN or len(sites) == 1:
            return sites[0]
        if self.policy == SelectionPolicy.ANYCAST:
            model = latency or LatencyModel()
            return min(sites, key=lambda s: model.base_rtt_ms(ground_station, s))
        return min(sites, key=lambda s: geodesic_km(perceived_client, s))


def deployment(service: str, footprint_name: str, policy: SelectionPolicy) -> ServiceDeployment:
    """Convenience constructor resolving a footprint by name."""
    return ServiceDeployment(service=service, footprint=FOOTPRINTS[footprint_name], policy=policy)
