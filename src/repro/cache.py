"""Content-keyed capture cache.

Every benchmark session, CLI run, and example used to regenerate the
identical 600-customer capture from scratch. The cache maps the
*content identity* of a :class:`~repro.traffic.workload.WorkloadConfig`
— every field that changes the generated flows, plus a code-version
salt — to an ``.npz`` file, so a capture is generated once per config
and then reloads in well under a second.

Keying rules:

* ``n_workers`` is **excluded**: worker count never changes the output
  (see :mod:`repro.parallel`), so a capture generated with 8 workers
  hits for a serial run of the same config.
* ``n_shards`` is **included**: the shard plan decides which RNG
  stream samples which customer, so it is part of the content.
* :data:`CACHE_SALT` is **included**: bump it whenever the generator's
  sampling logic changes, and every stale entry misses from then on.
  Stale files are eventually overwritten in place (same filename ⇒
  same key), never silently served.

Writes are atomic and durable (temp file + fsync + ``os.replace``,
via :func:`repro.faults.atomic_write_bytes`) so a crashed or
concurrent writer can never leave a torn capture behind; concurrent
writers of the same key simply race to publish identical bytes. A
corrupt entry found at load time (torn by an old non-atomic writer,
bit rot) is *quarantined* — renamed aside with a ``.quarantined``
suffix for post-mortem — and treated as a miss, so the capture is
regenerated instead of crashing the run. Transient IO errors retry
with backoff through the cache's
:class:`~repro.faults.FaultInjector` hook (disabled by default).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.analysis.dataset import FlowFrame
from repro.faults import FaultInjector, atomic_write_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario import Scenario
    from repro.traffic.workload import WorkloadConfig

    ConfigLike = Union[WorkloadConfig, Scenario]

#: Bump whenever a generator change alters the sampled flows for an
#: unchanged config (new RNG consumption order, new column, new model).
CACHE_SALT = "repro-capture-v1"

#: Config fields that do NOT change the generated flows and therefore
#: must not contribute to the cache key.
_EXECUTION_ONLY_FIELDS = frozenset({"n_workers"})


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def capture_key(config: "ConfigLike") -> str:
    """The cache identity of whatever ``config`` generates.

    Accepts either a legacy :class:`WorkloadConfig` (hashed field by
    field via :func:`config_cache_key`) or anything carrying a
    ``digest()`` method — i.e. a :class:`repro.scenario.Scenario`,
    whose digest deliberately collapses to the legacy key when its
    model sections sit at the baseline defaults.
    """
    digest = getattr(config, "digest", None)
    if callable(digest):
        return digest()
    return config_cache_key(config)


def stream_capture_key(config: "ConfigLike", window_days: int) -> str:
    """Hex digest identifying a *streaming* capture directory.

    Streaming captures sample per (shard, window) RNG streams, so the
    window plan is content the way ``n_shards`` is: the same workload
    config cut into different windows yields different flows. The key
    therefore extends :func:`capture_key` with the window length
    (and a stream schema salt), and is what checkpoint/resume verifies
    before continuing a half-written capture directory.
    """
    blob = json.dumps(
        {
            "capture": capture_key(config),
            "window_days": int(window_days),
            "stream_salt": "repro-stream-v1",
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def config_cache_key(config: "WorkloadConfig") -> str:
    """Hex digest identifying the capture ``config`` generates."""
    payload = {"salt": CACHE_SALT}
    for f in dataclasses.fields(config):
        if f.name in _EXECUTION_ONLY_FIELDS:
            continue
        value = getattr(config, f.name)
        if isinstance(value, tuple):
            value = list(value)
        payload[f.name] = value
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


class CaptureCache:
    """Filesystem cache of generated :class:`FlowFrame` captures."""

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        # Not the shared NO_FAULTS singleton: each cache owns its stats,
        # so ``cache.injector.stats.quarantined`` means *this* cache.
        self.injector = injector if injector is not None else FaultInjector(None)

    def path_for(self, config: "ConfigLike") -> Path:
        """Where the capture for ``config`` lives (existing or not).

        ``config`` may be a :class:`WorkloadConfig` or a scenario — the
        filename is keyed by :func:`capture_key` either way.
        """
        return self.directory / f"capture-{capture_key(config)}.npz"

    def quarantine_path(self, path: Path) -> Path:
        """Where a corrupt entry at ``path`` gets renamed for post-mortem."""
        return path.with_name(path.name + ".quarantined")

    def load(self, config: "ConfigLike") -> Optional[FlowFrame]:
        """The cached capture for ``config``, or ``None`` on a miss.

        A corrupt entry (torn by an old non-atomic writer, truncated
        disk, flipped bits) is quarantined — renamed aside, counted in
        ``injector.stats.quarantined`` — and treated as a miss, so the
        caller regenerates instead of crashing.
        """
        path = self.path_for(config)
        if not path.exists():
            return None

        def _read(ticket):
            ticket.check("read")
            return FlowFrame.load_npz(path)

        try:
            return self.injector.run_io("cache.load", _read)
        except FileNotFoundError:
            return None  # lost a race with clear(); a plain miss
        except Exception:
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, self.quarantine_path(path))
        except OSError:
            path.unlink(missing_ok=True)
        self.injector.stats.quarantined += 1

    def store(self, config: "ConfigLike", frame: FlowFrame) -> Path:
        """Atomically publish ``frame`` as the capture for ``config``."""
        path = self.path_for(config)
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            path,
            # uncompressed: a cache optimizes reload latency, and
            # savez_compressed costs ~10x the write time
            lambda h: frame.save_npz(h, compress=False),
            injector=self.injector,
            op="cache.store",
        )
        return path

    def clear(self) -> int:
        """Delete every cached capture (and quarantined remains);
        returns how many were removed."""
        removed = 0
        if self.directory.exists():
            for pattern in ("capture-*.npz", "capture-*.npz.quarantined"):
                for path in self.directory.glob(pattern):
                    path.unlink(missing_ok=True)
                    removed += 1
        return removed


def resolve_cache(
    cache: Union[None, bool, str, Path, CaptureCache]
) -> Optional[CaptureCache]:
    """Normalize the ``cache=`` argument accepted by the pipeline.

    ``None``/``False`` disable caching, ``True`` uses the default
    directory, a path uses that directory, and a :class:`CaptureCache`
    is passed through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return CaptureCache()
    if isinstance(cache, CaptureCache):
        return cache
    return CaptureCache(cache)
