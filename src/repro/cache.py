"""Content-keyed capture cache.

Every benchmark session, CLI run, and example used to regenerate the
identical 600-customer capture from scratch. The cache maps the
*content identity* of a :class:`~repro.traffic.workload.WorkloadConfig`
— every field that changes the generated flows, plus a code-version
salt — to an ``.npz`` file, so a capture is generated once per config
and then reloads in well under a second.

Keying rules:

* ``n_workers`` is **excluded**: worker count never changes the output
  (see :mod:`repro.parallel`), so a capture generated with 8 workers
  hits for a serial run of the same config.
* ``n_shards`` is **included**: the shard plan decides which RNG
  stream samples which customer, so it is part of the content.
* :data:`CACHE_SALT` is **included**: bump it whenever the generator's
  sampling logic changes, and every stale entry misses from then on.
  Stale files are eventually overwritten in place (same filename ⇒
  same key), never silently served.

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent writer can never leave a torn capture behind; concurrent
writers of the same key simply race to publish identical bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.analysis.dataset import FlowFrame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario import Scenario
    from repro.traffic.workload import WorkloadConfig

    ConfigLike = Union[WorkloadConfig, Scenario]

#: Bump whenever a generator change alters the sampled flows for an
#: unchanged config (new RNG consumption order, new column, new model).
CACHE_SALT = "repro-capture-v1"

#: Config fields that do NOT change the generated flows and therefore
#: must not contribute to the cache key.
_EXECUTION_ONLY_FIELDS = frozenset({"n_workers"})


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


def capture_key(config: "ConfigLike") -> str:
    """The cache identity of whatever ``config`` generates.

    Accepts either a legacy :class:`WorkloadConfig` (hashed field by
    field via :func:`config_cache_key`) or anything carrying a
    ``digest()`` method — i.e. a :class:`repro.scenario.Scenario`,
    whose digest deliberately collapses to the legacy key when its
    model sections sit at the baseline defaults.
    """
    digest = getattr(config, "digest", None)
    if callable(digest):
        return digest()
    return config_cache_key(config)


def stream_capture_key(config: "ConfigLike", window_days: int) -> str:
    """Hex digest identifying a *streaming* capture directory.

    Streaming captures sample per (shard, window) RNG streams, so the
    window plan is content the way ``n_shards`` is: the same workload
    config cut into different windows yields different flows. The key
    therefore extends :func:`capture_key` with the window length
    (and a stream schema salt), and is what checkpoint/resume verifies
    before continuing a half-written capture directory.
    """
    blob = json.dumps(
        {
            "capture": capture_key(config),
            "window_days": int(window_days),
            "stream_salt": "repro-stream-v1",
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def config_cache_key(config: "WorkloadConfig") -> str:
    """Hex digest identifying the capture ``config`` generates."""
    payload = {"salt": CACHE_SALT}
    for f in dataclasses.fields(config):
        if f.name in _EXECUTION_ONLY_FIELDS:
            continue
        value = getattr(config, f.name)
        if isinstance(value, tuple):
            value = list(value)
        payload[f.name] = value
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


class CaptureCache:
    """Filesystem cache of generated :class:`FlowFrame` captures."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def path_for(self, config: "ConfigLike") -> Path:
        """Where the capture for ``config`` lives (existing or not).

        ``config`` may be a :class:`WorkloadConfig` or a scenario — the
        filename is keyed by :func:`capture_key` either way.
        """
        return self.directory / f"capture-{capture_key(config)}.npz"

    def load(self, config: "ConfigLike") -> Optional[FlowFrame]:
        """The cached capture for ``config``, or ``None`` on a miss.

        A corrupt entry (torn by an old non-atomic writer, truncated
        disk) is treated as a miss and removed.
        """
        path = self.path_for(config)
        if not path.exists():
            return None
        try:
            return FlowFrame.load_npz(path)
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def store(self, config: "ConfigLike", frame: FlowFrame) -> Path:
        """Atomically publish ``frame`` as the capture for ``config``."""
        path = self.path_for(config)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                # uncompressed: a cache optimizes reload latency, and
                # savez_compressed costs ~10x the write time
                frame.save_npz(handle, compress=False)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self) -> int:
        """Delete every cached capture; returns how many were removed."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("capture-*.npz"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


def resolve_cache(
    cache: Union[None, bool, str, Path, CaptureCache]
) -> Optional[CaptureCache]:
    """Normalize the ``cache=`` argument accepted by the pipeline.

    ``None``/``False`` disable caching, ``True`` uses the default
    directory, a path uses that directory, and a :class:`CaptureCache`
    is passed through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return CaptureCache()
    if isinstance(cache, CaptureCache):
        return cache
    return CaptureCache(cache)
